//! Convergence monitoring over a block of K right-hand sides: oracle RMS
//! error and/or reference-free true residual, both incremental.
//!
//! The paper's convergence figures (8, 9, 12, 14) plot the error of the
//! evolving distributed state against the true solution `x* = A⁻¹b`. The
//! monitor maintains the *global* estimate (averaging every split vertex's
//! copies) incrementally — O(|part|·K) per activation, not O(n·K) — and
//! records a `(time, metric)` staircase series. With several right-hand
//! sides in flight the reported scalar is the **worst column's** value: a
//! batched solve is only done when its slowest column is done.
//!
//! Two metrics are supported, selected at construction:
//!
//! * **Oracle RMS** (the paper's figures): RMS error against precomputed
//!   direct solutions — requires one exact substitution per right-hand
//!   side, which no production deployment can pay.
//! * **Relative true residual** `‖b − A·x‖₂ / ‖b‖₂`
//!   ([`Monitor::new_residual`]): maintained incrementally from the same
//!   per-part updates — when an averaged estimate entry moves by δ, only
//!   the residual entries of A's column `g` change. The per-update cost is
//!   O(1) per changed entry: deltas are *aggregated* and the sparse row
//!   folds run batched at flush points (the residual is linear in the
//!   estimate, so aggregated folding is exact; staleness between flushes
//!   can only delay a stop, never trigger one early), with periodic exact
//!   resynchronization (like the RMS resync) bounding floating-point
//!   drift. No direct solve of the original system is ever performed.

use dtm_graph::evs::SplitSystem;
use dtm_simnet::{SimDuration, SimTime};
use dtm_sparse::Csr;

/// Which incremental metric drives [`Monitor::update_part`]'s return value
/// and the recorded series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Primary {
    OracleRms,
    Residual,
}

/// Incremental oracle-error state: Σ(est − x*)² per column.
#[derive(Debug, Clone)]
struct OracleTracker {
    /// Reference solutions, column-major (`n·k`).
    reference: Vec<f64>,
    /// Running Σ (est − ref)², per column.
    sum_sq_err: Vec<f64>,
}

/// Incremental true-residual state: r = b − A·est and Σr² per column.
///
/// The fold is **deferred**: an estimate update only aggregates its delta
/// into `pending` (O(1) per entry — cheaper than the oracle fold), and the
/// actual sparse row folds run batched at flush points. Because the
/// residual is linear in the estimate, folding an aggregated delta once is
/// exactly equivalent to folding every step (to rounding), so deferral
/// loses no precision — only freshness, and staleness is safe: the cached
/// metric is only ever a previously *exact* value, so a stop decision can
/// fire late by at most one flush window, never early.
#[derive(Debug, Clone)]
struct ResidualTracker {
    /// The reconstructed original system.
    a: Csr,
    /// Right-hand sides, column-major (`n·k`).
    rhs: Vec<f64>,
    /// `‖b_c‖₂` per column (1 where b is zero, so the ratio stays defined).
    b_scale: Vec<f64>,
    /// Residual as of the last flush, column-major (`n·k`).
    resid: Vec<f64>,
    /// Running Σ r² matching `resid`, per column.
    sum_sq: Vec<f64>,
    /// Aggregated estimate deltas awaiting a fold (`n·k`).
    pending: Vec<f64>,
    /// Entries of `pending` currently nonzero-recorded, as flat indices.
    dirty: Vec<usize>,
    /// O(1) dedup for `dirty`.
    in_dirty: Vec<bool>,
    /// Worst-column relative residual as of the last flush.
    cached_metric: f64,
    /// Monitor updates folded into `pending` since the last flush.
    updates_since_flush: usize,
}

/// Deferred-fold cadence: pending residual deltas are folded (and the
/// cached metric refreshed) every this many monitor updates while the
/// metric is far from the tolerance. Near the tolerance (within
/// [`RESID_NEAR_FACTOR`]×) every update flushes, so the stopping decision
/// is made on fresh values exactly when precision matters.
const RESID_FLUSH_EVERY: usize = 32;
/// See [`RESID_FLUSH_EVERY`].
const RESID_NEAR_FACTOR: f64 = 16.0;

/// Worst-column relative residual from per-column Σr² and scales.
fn worst_residual(sum_sq: &[f64], b_scale: &[f64]) -> f64 {
    sum_sq
        .iter()
        .zip(b_scale)
        .map(|(ss, sc)| ss.max(0.0).sqrt() / sc)
        .fold(0.0, f64::max)
}

/// Incremental global-estimate tracker for a K-column solution block, with
/// an oracle-RMS and/or true-residual metric on top.
#[derive(Debug, Clone)]
pub struct Monitor {
    /// RHS columns tracked.
    k: usize,
    /// Original dimension.
    n: usize,
    copy_count: Vec<f64>,
    global_of_local: Vec<Vec<usize>>,
    /// Latest local solution block per part (`n_local·k`).
    part_values: Vec<Vec<f64>>,
    /// Per-vertex sum of copies, column-major.
    sum: Vec<f64>,
    /// Per-vertex averaged estimate, column-major.
    est: Vec<f64>,
    /// Oracle-error state (present when references were supplied).
    oracle: Option<OracleTracker>,
    /// True-residual state (present in reference-free mode, or when
    /// explicitly attached for cross-checks).
    residual: Option<ResidualTracker>,
    /// Which metric [`update_part`](Self::update_part) returns and records.
    primary: Primary,
    series: Vec<(f64, f64)>,
    sample_interval: SimDuration,
    last_sample: Option<SimTime>,
    /// When the incremental metric drops below this value, resynchronize
    /// the accumulators exactly before reporting (guards against
    /// catastrophic cancellation near convergence). Zero disables.
    refresh_below: f64,
    /// Updates folded in since the last exact resync.
    updates_since_sync: usize,
    /// Total [`update_part`](Self::update_part) calls — the monitor-side
    /// activation counter, uniform across DTM and the baselines (every
    /// algorithm reports exactly one update per node activation).
    updates_total: u64,
}

/// Resync cadence while refresh is armed: the incremental accumulator can
/// also drift *upward* past the stopping tolerance (stalling an oracle run
/// at the horizon), so it is recomputed exactly every this many updates —
/// amortized O(copies-per-part) per activation, unchanged asymptotics.
const RESYNC_EVERY: usize = 256;

impl Monitor {
    /// Create a monitor for `split` against the reference solution
    /// (`x* = A⁻¹ b` of the original system). `sample_interval` throttles
    /// the recorded series (zero = record every activation).
    pub fn new(split: &SplitSystem, reference: Vec<f64>, sample_interval: SimDuration) -> Self {
        Self::new_block(split, &[reference], sample_interval)
    }

    /// Create a monitor for a K-column block solve: one reference solution
    /// per RHS column.
    ///
    /// # Panics
    /// Panics if `references` is empty or columns disagree in length.
    pub fn new_block(
        split: &SplitSystem,
        references: &[Vec<f64>],
        sample_interval: SimDuration,
    ) -> Self {
        Self::from_parts_block(
            split
                .subdomains
                .iter()
                .map(|sd| sd.global_of_local.clone())
                .collect(),
            split.copy_count.clone(),
            references,
            sample_interval,
        )
    }

    /// Create a monitor from raw part→global maps (used by the block-Jacobi
    /// baselines, whose parts don't overlap: `copy_count` all ones).
    pub fn from_parts(
        global_of_local: Vec<Vec<usize>>,
        copy_count: Vec<usize>,
        reference: Vec<f64>,
        sample_interval: SimDuration,
    ) -> Self {
        Self::from_parts_block(global_of_local, copy_count, &[reference], sample_interval)
    }

    /// Block form of [`from_parts`](Self::from_parts).
    ///
    /// # Panics
    /// Panics if `references` is empty or columns disagree in length.
    pub fn from_parts_block(
        global_of_local: Vec<Vec<usize>>,
        copy_count: Vec<usize>,
        references: &[Vec<f64>],
        sample_interval: SimDuration,
    ) -> Self {
        let k = references.len();
        assert!(k > 0, "at least one reference column");
        let n = references[0].len();
        let mut reference = Vec::with_capacity(n * k);
        for r in references {
            assert_eq!(r.len(), n, "reference column length");
            reference.extend_from_slice(r);
        }
        let sum_sq_err = references
            .iter()
            .map(|r| r.iter().map(|v| v * v).sum())
            .collect();
        let mut m = Self::bare(global_of_local, copy_count, n, k, sample_interval);
        m.oracle = Some(OracleTracker {
            reference,
            sum_sq_err,
        });
        m.primary = Primary::OracleRms;
        m
    }

    /// Create a **reference-free** monitor for `split`: the driving metric
    /// is the relative true residual `‖b − A·x‖₂ / ‖b‖₂` of the gathered
    /// estimate against the reconstructed original system, maintained
    /// incrementally. `rhs_cols = None` tracks the split's own right-hand
    /// side (the scalar pipeline); `Some` supplies the K global columns of
    /// a block solve. No direct solve of the original system happens here
    /// or later.
    ///
    /// # Panics
    /// Panics if a supplied column's length differs from the original
    /// dimension, or `rhs_cols` is `Some` but empty.
    pub fn new_residual(
        split: &SplitSystem,
        rhs_cols: Option<&[Vec<f64>]>,
        sample_interval: SimDuration,
    ) -> Self {
        let (a, own_b) = split.reconstruct();
        Self::from_parts_residual(
            split
                .subdomains
                .iter()
                .map(|sd| sd.global_of_local.clone())
                .collect(),
            split.copy_count.clone(),
            a,
            match rhs_cols {
                Some(cols) => cols,
                None => std::slice::from_ref(&own_b),
            },
            sample_interval,
        )
    }

    /// Raw-parts form of [`new_residual`](Self::new_residual) (used by the
    /// block-Jacobi baselines, whose parts don't overlap).
    ///
    /// # Panics
    /// Panics if `rhs_cols` is empty or a column's length differs from
    /// `a`'s dimension.
    pub fn from_parts_residual(
        global_of_local: Vec<Vec<usize>>,
        copy_count: Vec<usize>,
        a: Csr,
        rhs_cols: &[Vec<f64>],
        sample_interval: SimDuration,
    ) -> Self {
        let k = rhs_cols.len();
        assert!(k > 0, "at least one RHS column");
        let n = a.n_rows();
        let mut rhs = Vec::with_capacity(n * k);
        for c in rhs_cols {
            assert_eq!(c.len(), n, "RHS column length");
            rhs.extend_from_slice(c);
        }
        let b_scale: Vec<f64> = rhs_cols
            .iter()
            .map(|c| dtm_sparse::vector::norm2_or_one(c))
            .collect();
        // est = 0 ⇒ r = b ⇒ relative residual exactly 1 per column — except
        // an all-zero column, whose scale saturates to 1 (absolute
        // residual) and whose initial metric is therefore exactly 0, never
        // NaN: x = 0 already solves A·x = 0.
        let sum_sq: Vec<f64> = rhs_cols
            .iter()
            .map(|c| c.iter().map(|v| v * v).sum())
            .collect();
        let cached_metric = worst_residual(&sum_sq, &b_scale);
        let mut m = Self::bare(global_of_local, copy_count, n, k, sample_interval);
        m.residual = Some(ResidualTracker {
            a,
            resid: rhs.clone(),
            pending: vec![0.0; rhs.len()],
            in_dirty: vec![false; rhs.len()],
            dirty: Vec::new(),
            rhs,
            b_scale,
            sum_sq,
            cached_metric,
            updates_since_flush: 0,
        });
        m.primary = Primary::Residual;
        m
    }

    /// Attach an oracle tracker to an existing (typically residual-mode)
    /// monitor so tests can cross-check both metrics on one run. The
    /// primary metric is unchanged.
    ///
    /// # Panics
    /// Panics on column count/length mismatch.
    pub fn attach_oracle(&mut self, references: &[Vec<f64>]) {
        assert_eq!(references.len(), self.k, "one reference per column");
        let mut reference = Vec::with_capacity(self.n * self.k);
        for r in references {
            assert_eq!(r.len(), self.n, "reference column length");
            reference.extend_from_slice(r);
        }
        let sum_sq_err = (0..self.k)
            .map(|c| {
                self.est[c * self.n..(c + 1) * self.n]
                    .iter()
                    .zip(&reference[c * self.n..(c + 1) * self.n])
                    .map(|(e, r)| (e - r) * (e - r))
                    .sum()
            })
            .collect();
        self.oracle = Some(OracleTracker {
            reference,
            sum_sq_err,
        });
    }

    /// The shared estimate machinery, with no metric attached yet.
    fn bare(
        global_of_local: Vec<Vec<usize>>,
        copy_count: Vec<usize>,
        n: usize,
        k: usize,
        sample_interval: SimDuration,
    ) -> Self {
        assert_eq!(copy_count.len(), n, "copy_count length");
        Self {
            k,
            n,
            copy_count: copy_count.iter().map(|&c| c as f64).collect(),
            part_values: global_of_local
                .iter()
                .map(|g2l| vec![0.0; g2l.len() * k])
                .collect(),
            global_of_local,
            sum: vec![0.0; n * k],
            est: vec![0.0; n * k],
            oracle: None,
            residual: None,
            primary: Primary::OracleRms,
            series: Vec::new(),
            sample_interval,
            last_sample: None,
            refresh_below: 0.0,
            updates_since_sync: 0,
            updates_total: 0,
        }
    }

    /// RHS columns tracked.
    pub fn n_rhs(&self) -> usize {
        self.k
    }

    /// Total updates observed ([`update_part`](Self::update_part) calls) —
    /// the activations this monitor has witnessed. The simulated baseline
    /// driver asserts it against the engine's own activation counter, so
    /// the uniform counters stay uniform by construction.
    pub fn updates(&self) -> u64 {
        self.updates_total
    }

    /// Whether this monitor carries oracle references.
    pub fn has_oracle(&self) -> bool {
        self.oracle.is_some()
    }

    /// Whether this monitor tracks the true residual.
    pub fn tracks_residual(&self) -> bool {
        self.residual.is_some()
    }

    /// Enable exact resynchronization whenever the incrementally tracked
    /// primary metric falls below `threshold` (typically the solver's
    /// tolerance).
    pub fn set_refresh_below(&mut self, threshold: f64) {
        self.refresh_below = threshold;
    }

    /// Recompute every attached metric's accumulators exactly and return
    /// the exact worst-column primary metric.
    pub fn resync(&mut self) -> f64 {
        let n = self.n;
        if let Some(o) = &mut self.oracle {
            for c in 0..self.k {
                o.sum_sq_err[c] = self.est[c * n..(c + 1) * n]
                    .iter()
                    .zip(&o.reference[c * n..(c + 1) * n])
                    .map(|(e, r)| (e - r) * (e - r))
                    .sum();
            }
        }
        if let Some(t) = &mut self.residual {
            // Pending deltas are already reflected in `est`; recomputing
            // from `est` subsumes them, so they are simply discarded.
            for &gi in &t.dirty {
                t.pending[gi] = 0.0;
                t.in_dirty[gi] = false;
            }
            t.dirty.clear();
            t.updates_since_flush = 0;
            for c in 0..self.k {
                let (est_c, resid_c) = (
                    &self.est[c * n..(c + 1) * n],
                    &mut t.resid[c * n..(c + 1) * n],
                );
                t.a.residual_into(est_c, &t.rhs[c * n..(c + 1) * n], resid_c);
                t.sum_sq[c] = resid_c.iter().map(|r| r * r).sum();
            }
            t.cached_metric = worst_residual(&t.sum_sq, &t.b_scale);
        }
        self.metric()
    }

    /// Fold all pending residual deltas and refresh the cached metric —
    /// one sparse row fold per aggregated dirty entry.
    fn flush_tracker(t: &mut ResidualTracker, n: usize) {
        let ResidualTracker {
            a,
            resid,
            sum_sq,
            pending,
            dirty,
            in_dirty,
            cached_metric,
            b_scale,
            updates_since_flush,
            ..
        } = t;
        let (rp, ci, vv) = (a.row_ptr(), a.col_idx(), a.values());
        for &gi in dirty.iter() {
            let delta = pending[gi];
            pending[gi] = 0.0;
            in_dirty[gi] = false;
            if delta == 0.0 {
                continue;
            }
            let (c, g) = (gi / n, gi % n);
            let base = c * n;
            let mut ssq = sum_sq[c];
            for idx in rp[g]..rp[g + 1] {
                let rj = base + ci[idx];
                let r_old = resid[rj];
                let r_new = r_old - vv[idx] * delta;
                ssq += r_new * r_new - r_old * r_old;
                resid[rj] = r_new;
            }
            sum_sq[c] = ssq;
        }
        dirty.clear();
        *updates_since_flush = 0;
        *cached_metric = worst_residual(sum_sq, b_scale);
    }

    /// Fold one part's newly solved local block in (`x` is the part's
    /// `n_local·k` column-major solution); returns the current worst-column
    /// primary metric (oracle RMS, or relative residual in reference-free
    /// mode).
    pub fn update_part(&mut self, part: usize, time: SimTime, x: &[f64]) -> f64 {
        let g2l = &self.global_of_local[part];
        let nl = g2l.len();
        let n = self.n;
        assert_eq!(x.len(), nl * self.k, "monitor: local block length");
        self.updates_total += 1;
        // Residual tracking is O(1) per changed entry here: the delta is
        // aggregated into `pending` and the sparse row folds run batched
        // at the flush below (see `ResidualTracker`).
        let mut resid_state = self
            .residual
            .as_mut()
            .map(|t| (&mut t.pending, &mut t.in_dirty, &mut t.dirty));
        for c in 0..self.k {
            for (l, &g) in g2l.iter().enumerate() {
                let (li, gi) = (c * nl + l, c * n + g);
                let old = self.part_values[part][li];
                if old == x[li] {
                    continue;
                }
                self.part_values[part][li] = x[li];
                self.sum[gi] += x[li] - old;
                let new_est = self.sum[gi] / self.copy_count[g];
                if let Some(o) = &mut self.oracle {
                    let e_old = self.est[gi] - o.reference[gi];
                    let e_new = new_est - o.reference[gi];
                    o.sum_sq_err[c] += e_new * e_new - e_old * e_old;
                }
                if let Some((pending, in_dirty, dirty)) = &mut resid_state {
                    // est[g] moves by δ ⇒ r[j] −= A[j,g]·δ for the nonzeros
                    // of column g (A symmetric: row g); the fold itself is
                    // deferred, only the aggregated δ is recorded here.
                    pending[gi] += new_est - self.est[gi];
                    if !in_dirty[gi] {
                        in_dirty[gi] = true;
                        dirty.push(gi);
                    }
                }
                self.est[gi] = new_est;
            }
        }
        // Deferred residual fold: flush every RESID_FLUSH_EVERY updates —
        // or every update once the cached metric is within
        // RESID_NEAR_FACTOR of the refresh threshold (≈ the stopping
        // tolerance), where freshness decides when the run ends.
        if let Some(t) = &mut self.residual {
            t.updates_since_flush += 1;
            let near = self.refresh_below > 0.0
                && t.cached_metric < self.refresh_below * RESID_NEAR_FACTOR;
            if near || t.updates_since_flush >= RESID_FLUSH_EVERY {
                Self::flush_tracker(t, n);
            }
        }
        let mut metric = self.metric();
        self.updates_since_sync += 1;
        // `<=`, not `<`: a stop decision compares `metric <= tol`, so the
        // boundary value must also be re-derived exactly. An incremental
        // (or deferred-fold) value that drifted **at or below** the
        // threshold is never allowed to terminate a run by itself — the
        // exact resync re-derives it before it is reported.
        if self.refresh_below > 0.0
            && (metric <= self.refresh_below || self.updates_since_sync >= RESYNC_EVERY)
        {
            metric = self.resync();
            self.updates_since_sync = 0;
        }
        let due = match self.last_sample {
            None => true,
            Some(t0) => time.since(t0) >= self.sample_interval,
        };
        if due {
            self.series.push((time.as_millis_f64(), metric));
            self.last_sample = Some(time);
        }
        metric
    }

    /// The oracle tracker, which every `OracleRms`-mode accessor needs.
    /// `None` on a monitor built without references; the accessors map
    /// that to `NaN` — the report vocabulary's "no oracle" value — so a
    /// mode mismatch degrades to an unusable number, never a crash.
    fn oracle_state(&self) -> Option<&OracleTracker> {
        self.oracle.as_ref()
    }

    /// The residual tracker behind every `Residual`-mode accessor. `None`
    /// when the monitor does not track the residual; accessors map that
    /// to `NaN` rather than panicking.
    fn tracker(&self) -> Option<&ResidualTracker> {
        self.residual.as_ref()
    }

    /// Mutable [`tracker`](Self::tracker).
    fn tracker_mut(&mut self) -> Option<&mut ResidualTracker> {
        self.residual.as_mut()
    }

    /// Current worst-column primary metric (incrementally maintained; the
    /// residual value is the cached last-flush metric — always a
    /// previously exact number, possibly one flush window stale).
    pub fn metric(&self) -> f64 {
        match self.primary {
            Primary::OracleRms => self.rms(),
            Primary::Residual => self.tracker().map_or(f64::NAN, |t| t.cached_metric),
        }
    }

    /// Current worst-column RMS error (incrementally maintained).
    /// `NaN` if the monitor carries no oracle references.
    pub fn rms(&self) -> f64 {
        let n = self.n.max(1) as f64;
        self.oracle_state().map_or(f64::NAN, |o| {
            o.sum_sq_err
                .iter()
                .map(|ss| (ss.max(0.0) / n).sqrt())
                .fold(0.0, f64::max)
        })
    }

    /// Current worst-column relative residual `‖b − A·x‖₂ / ‖b‖₂`
    /// (incrementally maintained; any pending deferred folds are applied
    /// first, so the returned value always reflects every update).
    /// `NaN` if the monitor does not track the residual.
    pub fn rel_residual(&mut self) -> f64 {
        let n = self.n;
        match self.tracker_mut() {
            Some(t) => {
                if !t.dirty.is_empty() {
                    Self::flush_tracker(t, n);
                }
                t.cached_metric
            }
            None => f64::NAN,
        }
    }

    /// Exactly recomputed worst-column RMS error (clears accumulated FP
    /// drift). `NaN` if the monitor carries no oracle references.
    pub fn rms_exact(&self) -> f64 {
        match self.oracle_state() {
            Some(_) => self.rms_exact_per_rhs().into_iter().fold(0.0, f64::max),
            None => f64::NAN,
        }
    }

    /// Exactly recomputed RMS error per RHS column. All-`NaN` if the
    /// monitor carries no oracle references.
    pub fn rms_exact_per_rhs(&self) -> Vec<f64> {
        let n = self.n;
        (0..self.k)
            .map(|c| {
                self.oracle_state().map_or(f64::NAN, |o| {
                    dtm_sparse::vector::rms_error(
                        &self.est[c * n..(c + 1) * n],
                        &o.reference[c * n..(c + 1) * n],
                    )
                })
            })
            .collect()
    }

    /// Exactly recomputed relative residual per RHS column (one fused SpMV
    /// per column; does not disturb the incremental accumulators).
    /// All-`NaN` if the monitor does not track the residual.
    pub fn residual_exact_per_rhs(&self) -> Vec<f64> {
        let n = self.n;
        (0..self.k)
            .map(|c| {
                self.tracker().map_or(f64::NAN, |t| {
                    t.a.residual_norm(&self.est[c * n..(c + 1) * n], &t.rhs[c * n..(c + 1) * n])
                        / t.b_scale[c]
                })
            })
            .collect()
    }

    /// Incrementally maintained RMS error of **one** column (rolling
    /// sessions stop columns individually; the worst-column scalar is the
    /// batch pipeline's view). `NaN` if the monitor carries no oracle
    /// references.
    pub fn col_rms(&self, col: usize) -> f64 {
        self.oracle_state().map_or(f64::NAN, |o| {
            (o.sum_sq_err[col].max(0.0) / self.n.max(1) as f64).sqrt()
        })
    }

    /// Relative residual of one column as of the last flush (cheap; may be
    /// one flush window stale — confirm a crossing with
    /// [`residual_exact_col`](Self::residual_exact_col) before acting on
    /// it). `NaN` if the monitor does not track the residual.
    pub fn col_residual(&self, col: usize) -> f64 {
        self.tracker()
            .map_or(f64::NAN, |t| t.sum_sq[col].max(0.0).sqrt() / t.b_scale[col])
    }

    /// Exactly recomputed RMS error of one column. `NaN` if the monitor
    /// carries no oracle references.
    pub fn rms_exact_col(&self, col: usize) -> f64 {
        let n = self.n;
        self.oracle_state().map_or(f64::NAN, |o| {
            dtm_sparse::vector::rms_error(
                &self.est[col * n..(col + 1) * n],
                &o.reference[col * n..(col + 1) * n],
            )
        })
    }

    /// Exactly recomputed relative residual of one column (one fused SpMV;
    /// does not disturb the incremental accumulators). `NaN` if the
    /// monitor does not track the residual.
    pub fn residual_exact_col(&self, col: usize) -> f64 {
        let n = self.n;
        self.tracker().map_or(f64::NAN, |t| {
            t.a.residual_norm(
                &self.est[col * n..(col + 1) * n],
                &t.rhs[col * n..(col + 1) * n],
            ) / t.b_scale[col]
        })
    }

    /// Retire/admit one column in place — the rolling-session hand-off.
    ///
    /// The estimate state is **kept**: the executors' nodes still hold (and
    /// keep reporting) their current solutions, so the incremental diffing
    /// against `part_values` stays consistent; only the *targets* change.
    /// The residual tracker re-anchors on `rhs_col` (its pending deferred
    /// deltas for this column are discarded — they described folds against
    /// the retired right-hand side — and the column's residual is recomputed
    /// exactly against the new one). When the monitor carries an oracle,
    /// `reference` replaces the column's reference (`None` zeroes it —
    /// residual-rule tickets in a mixed session have no oracle and must
    /// never be judged by RMS).
    ///
    /// # Panics
    /// Panics on column/length mismatch.
    pub fn replace_column(&mut self, col: usize, rhs_col: &[f64], reference: Option<&[f64]>) {
        assert!(col < self.k, "column out of range");
        assert_eq!(rhs_col.len(), self.n, "RHS column length");
        let n = self.n;
        if let Some(t) = &mut self.residual {
            t.rhs[col * n..(col + 1) * n].copy_from_slice(rhs_col);
            t.b_scale[col] = dtm_sparse::vector::norm2_or_one(rhs_col);
            // Pending deltas for this column described folds against the
            // retired RHS; the exact recompute below subsumes them.
            for &gi in &t.dirty {
                if gi / n == col {
                    t.pending[gi] = 0.0;
                    t.in_dirty[gi] = false;
                }
            }
            t.dirty.retain(|&gi| gi / n != col);
            let (est_c, resid_c) = (
                &self.est[col * n..(col + 1) * n],
                &mut t.resid[col * n..(col + 1) * n],
            );
            t.a.residual_into(est_c, &t.rhs[col * n..(col + 1) * n], resid_c);
            t.sum_sq[col] = resid_c.iter().map(|r| r * r).sum();
            t.cached_metric = worst_residual(&t.sum_sq, &t.b_scale);
        }
        if let Some(o) = &mut self.oracle {
            let slot = &mut o.reference[col * n..(col + 1) * n];
            match reference {
                Some(r) => {
                    assert_eq!(r.len(), n, "reference column length");
                    slot.copy_from_slice(r);
                }
                None => slot.fill(0.0),
            }
            o.sum_sq_err[col] = self.est[col * n..(col + 1) * n]
                .iter()
                .zip(&o.reference[col * n..(col + 1) * n])
                .map(|(e, r)| (e - r) * (e - r))
                .sum();
        }
    }

    /// Current global estimate of column 0 (copies averaged).
    pub fn estimate(&self) -> &[f64] {
        self.estimate_col(0)
    }

    /// Current global estimate of one RHS column.
    pub fn estimate_col(&self, col: usize) -> &[f64] {
        &self.est[col * self.n..(col + 1) * self.n]
    }

    /// Current global estimates, one vector per RHS column.
    pub fn estimates(&self) -> Vec<Vec<f64>> {
        (0..self.k).map(|c| self.estimate_col(c).to_vec()).collect()
    }

    /// The recorded `(time_ms, metric)` staircase (worst column, in the
    /// primary metric: oracle RMS, or relative residual in reference-free
    /// mode).
    pub fn series(&self) -> &[(f64, f64)] {
        &self.series
    }

    /// Consume into the series.
    pub fn into_series(self) -> Vec<(f64, f64)> {
        self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::evs::{split, EvsOptions};
    use dtm_graph::{ElectricGraph, PartitionPlan};
    use dtm_sparse::generators;

    fn make() -> (SplitSystem, Vec<f64>) {
        let a = generators::grid2d_laplacian(4, 4);
        let b = generators::random_rhs(16, 1);
        let reference = dtm_sparse::SparseCholesky::factor(&a).unwrap().solve(&b);
        let g = ElectricGraph::from_system(a, b).unwrap();
        let asg = dtm_graph::partition::grid_strips(4, 4, 2);
        let plan = PartitionPlan::from_assignment(&g, &asg).unwrap();
        (split(&g, &plan, &EvsOptions::default()).unwrap(), reference)
    }

    #[test]
    fn starts_at_reference_norm() {
        let (ss, reference) = make();
        let m = Monitor::new(&ss, reference.clone(), SimDuration::ZERO);
        let expect = dtm_sparse::vector::rms_error(&[0.0; 16], &reference);
        assert!((m.rms() - expect).abs() < 1e-12);
    }

    #[test]
    fn feeding_exact_solution_drives_rms_to_zero() {
        let (ss, reference) = make();
        let mut m = Monitor::new(&ss, reference.clone(), SimDuration::ZERO);
        m.set_refresh_below(1e-6);
        for (p, sd) in ss.subdomains.iter().enumerate() {
            let local: Vec<f64> = sd.global_of_local.iter().map(|&g| reference[g]).collect();
            m.update_part(p, SimTime::from_nanos(p as u64), &local);
        }
        assert!(m.rms() < 1e-12, "rms {}", m.rms());
        assert!(m.rms_exact() < 1e-12);
        for (e, r) in m.estimate().iter().zip(&reference) {
            assert!((e - r).abs() < 1e-12);
        }
    }

    #[test]
    fn incremental_matches_exact() {
        let (ss, reference) = make();
        let mut m = Monitor::new(&ss, reference, SimDuration::ZERO);
        // Feed arbitrary values in several rounds; drift must stay tiny.
        for round in 0..5 {
            for (p, sd) in ss.subdomains.iter().enumerate() {
                let local: Vec<f64> = (0..sd.n_local())
                    .map(|l| ((l + round) as f64 * 0.37).sin())
                    .collect();
                m.update_part(p, SimTime::from_nanos((round * 10 + p) as u64), &local);
            }
        }
        assert!((m.rms() - m.rms_exact()).abs() < 1e-10);
    }

    #[test]
    fn update_counter_counts_activations() {
        let (ss, reference) = make();
        let mut m = Monitor::new(&ss, reference, SimDuration::ZERO);
        assert_eq!(m.updates(), 0);
        for k in 0..7u64 {
            let local = vec![k as f64; ss.subdomains[0].n_local()];
            m.update_part(0, SimTime::from_nanos(k), &local);
        }
        assert_eq!(m.updates(), 7);
    }

    #[test]
    fn sampling_interval_throttles_series() {
        let (ss, reference) = make();
        let mut dense = Monitor::new(&ss, reference.clone(), SimDuration::ZERO);
        let mut sparse = Monitor::new(&ss, reference, SimDuration::from_nanos(100));
        for k in 0..50u64 {
            let local: Vec<f64> = vec![k as f64; ss.subdomains[0].n_local()];
            dense.update_part(0, SimTime::from_nanos(k * 10), &local);
            sparse.update_part(0, SimTime::from_nanos(k * 10), &local);
        }
        assert_eq!(dense.series().len(), 50);
        assert!(sparse.series().len() < 10);
    }

    #[test]
    fn residual_monitor_starts_at_one_and_reaches_zero() {
        // est = 0 ⇒ r = b ⇒ ‖r‖/‖b‖ = 1 exactly; feeding the exact
        // solution drives the relative residual to ~0 (reference-free: no
        // direct solve of the original system is involved in the metric).
        let (ss, reference) = make();
        let mut m = Monitor::new_residual(&ss, None, SimDuration::ZERO);
        m.set_refresh_below(1e-6);
        assert!(!m.has_oracle());
        assert!(m.tracks_residual());
        assert!((m.rel_residual() - 1.0).abs() < 1e-12);
        for (p, sd) in ss.subdomains.iter().enumerate() {
            let local: Vec<f64> = sd.global_of_local.iter().map(|&g| reference[g]).collect();
            m.update_part(p, SimTime::from_nanos(p as u64), &local);
        }
        // The incremental accumulator carries cancellation drift until a
        // resync; the exact recompute is clean immediately.
        assert!(m.rel_residual() < 1e-6, "residual {}", m.rel_residual());
        assert!(m.residual_exact_per_rhs()[0] < 1e-10);
        m.resync();
        assert!(m.rel_residual() < 1e-10, "post-resync {}", m.rel_residual());
    }

    #[test]
    fn incremental_residual_matches_exact_recompute() {
        let (ss, _) = make();
        let (a, b) = ss.reconstruct();
        let bnorm = dtm_sparse::vector::norm2(&b);
        let mut m = Monitor::new_residual(&ss, None, SimDuration::ZERO);
        for round in 0..5 {
            for (p, sd) in ss.subdomains.iter().enumerate() {
                let local: Vec<f64> = (0..sd.n_local())
                    .map(|l| ((l + round) as f64 * 0.61).cos())
                    .collect();
                m.update_part(p, SimTime::from_nanos((round * 10 + p) as u64), &local);
            }
        }
        let exact = a.residual_norm(m.estimate(), &b) / bnorm;
        assert!(
            (m.rel_residual() - exact).abs() < 1e-12,
            "incremental {} vs exact {}",
            m.rel_residual(),
            exact
        );
    }

    #[test]
    fn attached_oracle_cross_checks_residual_mode() {
        // A residual-primary monitor with an oracle attached reports both:
        // the primary metric (and series) stay residual, while the oracle
        // RMS is available for test-only equivalence checks.
        let (ss, reference) = make();
        let mut m = Monitor::new_residual(&ss, None, SimDuration::ZERO);
        m.set_refresh_below(1e-6);
        m.attach_oracle(std::slice::from_ref(&reference));
        assert!(m.has_oracle());
        for (p, sd) in ss.subdomains.iter().enumerate() {
            let local: Vec<f64> = sd.global_of_local.iter().map(|&g| reference[g]).collect();
            // The primary (returned) metric is the residual's cached
            // value — a previously exact number, never the oracle RMS.
            let metric = m.update_part(p, SimTime::from_nanos(p as u64), &local);
            assert!(metric <= 1.0 + 1e-12, "cached residual metric");
        }
        assert!(m.rms_exact() < 1e-12);
        assert!(m.rel_residual() < 1e-6);
        m.resync();
        assert!(m.rel_residual() < 1e-10);
    }

    #[test]
    fn drifted_incremental_value_cannot_declare_convergence() {
        // Regression (stale deferred fold): simulate a drifted incremental
        // accumulator sitting AT or BELOW the stopping tolerance while the
        // exact residual is far above it. The next update_part must resync
        // exactly before reporting, so the returned (stop-deciding) metric
        // is the true one — a drifted value can never terminate a run
        // early.
        let (ss, _) = make();
        let tol = 1e-6;
        let mut m = Monitor::new_residual(&ss, None, SimDuration::ZERO);
        m.set_refresh_below(tol);
        // One genuine update so the estimate is nonzero and far from
        // convergence.
        let local0: Vec<f64> = (0..ss.subdomains[0].n_local())
            .map(|l| 0.5 + l as f64 * 0.1)
            .collect();
        m.update_part(0, SimTime::from_nanos(0), &local0);
        let exact = m.residual_exact_per_rhs()[0];
        assert!(exact > 100.0 * tol, "setup: far from converged ({exact})");
        // Fold all pending deltas, then corrupt the incremental
        // accumulator the way drift would: the cached metric lands exactly
        // on the tolerance (the `<` vs `<=` boundary) and the per-column
        // sum agrees with it.
        m.rel_residual();
        {
            let t = m.residual.as_mut().unwrap();
            t.sum_sq[0] = (tol * t.b_scale[0]).powi(2);
            t.cached_metric = tol;
        }
        assert_eq!(m.metric(), tol, "drifted value is in place");
        // The next update must NOT report the drifted value: the stop
        // decision sees the exact resynced metric.
        let local1 = vec![0.0; ss.subdomains[1].n_local()];
        let reported = m.update_part(1, SimTime::from_nanos(1), &local1);
        assert!(
            reported > tol,
            "reported {reported} must be the exact metric, not the drifted {tol}"
        );
        let exact_now = m.residual_exact_per_rhs()[0];
        assert!(
            (reported - exact_now).abs() <= 1e-12 * exact_now.max(1.0),
            "reported {reported} vs exact {exact_now}"
        );
    }

    #[test]
    fn adversarial_update_orders_stop_only_on_exact_values() {
        // Contract form of the same regression: across an adversarial
        // update order (many tiny alternating-sign changes that maximise
        // cancellation in the deferred folds), every time update_part
        // returns a value at or below the tolerance, the exact
        // recomputation agrees — the stop decision never fires on a stale
        // or drifted number.
        let (ss, reference) = make();
        let tol = 1e-3;
        let mut m = Monitor::new_residual(&ss, None, SimDuration::ZERO);
        m.set_refresh_below(tol);
        let mut crossings = 0;
        for round in 0..120 {
            for (p, sd) in ss.subdomains.iter().enumerate() {
                // Converge toward the solution with oscillating over/under
                // shoot so deltas alternate sign (worst case for aggregated
                // folds), approaching the tolerance from above.
                let damp = 1.0 / (1.0 + (round as f64).powi(2) * 0.5);
                let wiggle = if round % 2 == 0 { 1.0 } else { -1.0 };
                let local: Vec<f64> = sd
                    .global_of_local
                    .iter()
                    .enumerate()
                    .map(|(l, &g)| {
                        reference[g] * (1.0 + wiggle * damp * (0.3 + 0.1 * (l as f64).sin()))
                    })
                    .collect();
                let reported =
                    m.update_part(p, SimTime::from_nanos((round * 10 + p) as u64), &local);
                if reported <= tol {
                    crossings += 1;
                    let exact = m.residual_exact_per_rhs()[0];
                    assert!(
                        (reported - exact).abs() <= 1e-12 * exact.max(1.0),
                        "round {round}: stop-eligible value {reported} must be \
                         exact (true residual {exact})"
                    );
                }
            }
        }
        assert!(crossings > 0, "the run must actually cross the tolerance");
    }

    #[test]
    fn zero_rhs_column_has_defined_residual_from_the_start() {
        // An all-zero RHS column: ‖b‖ = 0, so the scale saturates to 1 and
        // the metric is the ABSOLUTE residual — defined (never NaN) and 0
        // at the zero initial guess, because x = 0 solves A·x = 0 exactly.
        let (ss, _) = make();
        let zero = vec![0.0; 16];
        let mut m =
            Monitor::new_residual(&ss, Some(std::slice::from_ref(&zero)), SimDuration::ZERO);
        assert_eq!(m.metric(), 0.0, "initial metric is exactly 0, not NaN/1");
        assert_eq!(m.rel_residual(), 0.0);
        assert_eq!(m.residual_exact_per_rhs()[0], 0.0);
        // Perturbing the estimate raises the absolute residual; it stays
        // finite and returns to ~0 when the parts report zeros again.
        let n0 = ss.subdomains[0].n_local();
        m.update_part(0, SimTime::from_nanos(0), &vec![0.5; n0]);
        let m1 = m.rel_residual();
        assert!(m1.is_finite() && m1 > 0.0, "perturbed metric {m1}");
        m.update_part(0, SimTime::from_nanos(1), &vec![0.0; n0]);
        assert!(m.rel_residual().is_finite());
        m.resync();
        assert!(m.rel_residual() < 1e-12);
    }

    #[test]
    fn replace_column_reanchors_both_metrics_mid_run() {
        // The rolling retire/admit hand-off: replace column 0's RHS (and
        // oracle reference) while the estimate is mid-flight. Both metrics
        // must re-anchor on the new targets against the *current* estimate,
        // and subsequent updates must stay consistent with exact
        // recomputation.
        let (ss, reference) = make();
        let (a, b_old) = ss.reconstruct();
        let mut m =
            Monitor::new_residual(&ss, Some(std::slice::from_ref(&b_old)), SimDuration::ZERO);
        m.attach_oracle(std::slice::from_ref(&reference));
        // Drive the estimate to the OLD solution.
        for (p, sd) in ss.subdomains.iter().enumerate() {
            let local: Vec<f64> = sd.global_of_local.iter().map(|&g| reference[g]).collect();
            m.update_part(p, SimTime::from_nanos(p as u64), &local);
        }
        m.resync();
        assert!(m.rel_residual() < 1e-10, "converged on the old column");

        // Admit a new RHS into the slot.
        let b_new = generators::random_rhs(16, 77);
        let x_new = dtm_sparse::SparseCholesky::factor(&a)
            .unwrap()
            .solve(&b_new);
        m.replace_column(0, &b_new, Some(&x_new));
        let expect_resid =
            a.residual_norm(m.estimate(), &b_new) / dtm_sparse::vector::norm2(&b_new);
        assert!(
            (m.col_residual(0) - expect_resid).abs() <= 1e-12 * expect_resid.max(1.0),
            "residual re-anchored: {} vs {}",
            m.col_residual(0),
            expect_resid
        );
        assert!(
            (m.col_rms(0) - dtm_sparse::vector::rms_error(m.estimate(), &x_new)).abs() < 1e-12,
            "oracle re-anchored"
        );
        // Feed the NEW solution; both metrics drop to ~0 and incremental
        // tracking stayed consistent through the swap.
        for (p, sd) in ss.subdomains.iter().enumerate() {
            let local: Vec<f64> = sd.global_of_local.iter().map(|&g| x_new[g]).collect();
            m.update_part(p, SimTime::from_nanos(10 + p as u64), &local);
        }
        m.resync();
        assert!(m.rel_residual() < 1e-10, "resid {}", m.rel_residual());
        assert!(m.rms_exact_col(0) < 1e-12);
        assert!(m.residual_exact_col(0) < 1e-10);
    }

    #[test]
    fn block_monitor_tracks_worst_column() {
        // Two columns: feed column 0 its exact solution, leave column 1 at
        // zero — the reported RMS must be column 1's error, and the
        // per-column report must distinguish them.
        let (ss, reference) = make();
        let ref2: Vec<f64> = reference.iter().map(|v| v * 2.0).collect();
        let refs = vec![reference.clone(), ref2.clone()];
        let mut m = Monitor::new_block(&ss, &refs, SimDuration::ZERO);
        assert_eq!(m.n_rhs(), 2);
        for (p, sd) in ss.subdomains.iter().enumerate() {
            let nl = sd.n_local();
            let mut block = vec![0.0; nl * 2];
            for (l, &g) in sd.global_of_local.iter().enumerate() {
                block[l] = reference[g]; // column 0 exact
            }
            m.update_part(p, SimTime::from_nanos(p as u64), &block);
        }
        let per = m.rms_exact_per_rhs();
        assert!(per[0] < 1e-12, "column 0 exact, got {}", per[0]);
        let expect = dtm_sparse::vector::rms_error(&[0.0; 16], &ref2);
        assert!((per[1] - expect).abs() < 1e-12);
        assert!((m.rms() - per[1]).abs() < 1e-9, "worst column wins");
        // Column estimates address the right slices.
        for (e, r) in m.estimate_col(0).iter().zip(&reference) {
            assert!((e - r).abs() < 1e-12);
        }
        assert_eq!(m.estimates().len(), 2);
    }
}

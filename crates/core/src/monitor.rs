//! RMS-error-vs-time monitoring.
//!
//! The paper's convergence figures (8, 9, 12, 14) plot the error of the
//! evolving distributed state against the true solution `x* = A⁻¹b`. The
//! monitor maintains the *global* estimate (averaging every split vertex's
//! copies) incrementally — O(|part|) per activation, not O(n) — and records
//! a `(time, rms)` staircase series.

use dtm_graph::evs::SplitSystem;
use dtm_simnet::{SimDuration, SimTime};

/// Incremental global-error tracker.
#[derive(Debug, Clone)]
pub struct Monitor {
    reference: Vec<f64>,
    copy_count: Vec<f64>,
    global_of_local: Vec<Vec<usize>>,
    /// Latest local solution per part.
    part_values: Vec<Vec<f64>>,
    /// Per-vertex sum of copies.
    sum: Vec<f64>,
    /// Per-vertex averaged estimate.
    est: Vec<f64>,
    /// Running Σ (est − ref)².
    sum_sq_err: f64,
    series: Vec<(f64, f64)>,
    sample_interval: SimDuration,
    last_sample: Option<SimTime>,
    /// When the incremental RMS drops below this value, resynchronize the
    /// accumulator exactly before reporting (guards against catastrophic
    /// cancellation near convergence). Zero disables.
    refresh_below: f64,
}

impl Monitor {
    /// Create a monitor for `split` against the reference solution
    /// (`x* = A⁻¹ b` of the original system). `sample_interval` throttles
    /// the recorded series (zero = record every activation).
    pub fn new(split: &SplitSystem, reference: Vec<f64>, sample_interval: SimDuration) -> Self {
        Self::from_parts(
            split
                .subdomains
                .iter()
                .map(|sd| sd.global_of_local.clone())
                .collect(),
            split.copy_count.clone(),
            reference,
            sample_interval,
        )
    }

    /// Create a monitor from raw part→global maps (used by the block-Jacobi
    /// baselines, whose parts don't overlap: `copy_count` all ones).
    pub fn from_parts(
        global_of_local: Vec<Vec<usize>>,
        copy_count: Vec<usize>,
        reference: Vec<f64>,
        sample_interval: SimDuration,
    ) -> Self {
        let n = reference.len();
        assert_eq!(copy_count.len(), n, "copy_count length");
        let est = vec![0.0; n];
        let sum_sq_err = reference.iter().map(|r| r * r).sum();
        Self {
            copy_count: copy_count.iter().map(|&c| c as f64).collect(),
            part_values: global_of_local
                .iter()
                .map(|g2l| vec![0.0; g2l.len()])
                .collect(),
            global_of_local,
            sum: vec![0.0; n],
            est,
            sum_sq_err,
            series: Vec::new(),
            sample_interval,
            last_sample: None,
            refresh_below: 0.0,
            reference,
        }
    }

    /// Enable exact resynchronization whenever the incrementally tracked
    /// RMS falls below `threshold` (typically the solver's tolerance).
    pub fn set_refresh_below(&mut self, threshold: f64) {
        self.refresh_below = threshold;
    }

    /// Recompute the error accumulator exactly and return the exact RMS.
    pub fn resync(&mut self) -> f64 {
        let ss: f64 = self
            .est
            .iter()
            .zip(&self.reference)
            .map(|(e, r)| (e - r) * (e - r))
            .sum();
        self.sum_sq_err = ss;
        self.rms()
    }

    /// Fold one part's newly solved local values in; returns the current
    /// global RMS error.
    pub fn update_part(&mut self, part: usize, time: SimTime, x: &[f64]) -> f64 {
        let g2l = &self.global_of_local[part];
        assert_eq!(x.len(), g2l.len(), "monitor: local length");
        for (l, &g) in g2l.iter().enumerate() {
            let old = self.part_values[part][l];
            if old == x[l] {
                continue;
            }
            self.part_values[part][l] = x[l];
            self.sum[g] += x[l] - old;
            let new_est = self.sum[g] / self.copy_count[g];
            let e_old = self.est[g] - self.reference[g];
            let e_new = new_est - self.reference[g];
            self.sum_sq_err += e_new * e_new - e_old * e_old;
            self.est[g] = new_est;
        }
        let mut rms = self.rms();
        if self.refresh_below > 0.0 && rms < self.refresh_below {
            rms = self.resync();
        }
        let due = match self.last_sample {
            None => true,
            Some(t0) => time.since(t0) >= self.sample_interval,
        };
        if due {
            self.series.push((time.as_millis_f64(), rms));
            self.last_sample = Some(time);
        }
        rms
    }

    /// Current RMS error (incrementally maintained).
    pub fn rms(&self) -> f64 {
        (self.sum_sq_err.max(0.0) / self.reference.len().max(1) as f64).sqrt()
    }

    /// Exactly recomputed RMS error (clears accumulated FP drift).
    pub fn rms_exact(&self) -> f64 {
        dtm_sparse::vector::rms_error(&self.est, &self.reference)
    }

    /// Current global estimate (copies averaged).
    pub fn estimate(&self) -> &[f64] {
        &self.est
    }

    /// The recorded `(time_ms, rms)` staircase.
    pub fn series(&self) -> &[(f64, f64)] {
        &self.series
    }

    /// Consume into the series.
    pub fn into_series(self) -> Vec<(f64, f64)> {
        self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::evs::{split, EvsOptions};
    use dtm_graph::{ElectricGraph, PartitionPlan};
    use dtm_sparse::generators;

    fn make() -> (SplitSystem, Vec<f64>) {
        let a = generators::grid2d_laplacian(4, 4);
        let b = generators::random_rhs(16, 1);
        let reference = dtm_sparse::SparseCholesky::factor(&a).unwrap().solve(&b);
        let g = ElectricGraph::from_system(a, b).unwrap();
        let asg = dtm_graph::partition::grid_strips(4, 4, 2);
        let plan = PartitionPlan::from_assignment(&g, &asg).unwrap();
        (split(&g, &plan, &EvsOptions::default()).unwrap(), reference)
    }

    #[test]
    fn starts_at_reference_norm() {
        let (ss, reference) = make();
        let m = Monitor::new(&ss, reference.clone(), SimDuration::ZERO);
        let expect = dtm_sparse::vector::rms_error(&[0.0; 16], &reference);
        assert!((m.rms() - expect).abs() < 1e-12);
    }

    #[test]
    fn feeding_exact_solution_drives_rms_to_zero() {
        let (ss, reference) = make();
        let mut m = Monitor::new(&ss, reference.clone(), SimDuration::ZERO);
        m.set_refresh_below(1e-6);
        for (p, sd) in ss.subdomains.iter().enumerate() {
            let local: Vec<f64> = sd.global_of_local.iter().map(|&g| reference[g]).collect();
            m.update_part(p, SimTime::from_nanos(p as u64), &local);
        }
        assert!(m.rms() < 1e-12, "rms {}", m.rms());
        assert!(m.rms_exact() < 1e-12);
        for (e, r) in m.estimate().iter().zip(&reference) {
            assert!((e - r).abs() < 1e-12);
        }
    }

    #[test]
    fn incremental_matches_exact() {
        let (ss, reference) = make();
        let mut m = Monitor::new(&ss, reference, SimDuration::ZERO);
        // Feed arbitrary values in several rounds; drift must stay tiny.
        for round in 0..5 {
            for (p, sd) in ss.subdomains.iter().enumerate() {
                let local: Vec<f64> = (0..sd.n_local())
                    .map(|l| ((l + round) as f64 * 0.37).sin())
                    .collect();
                m.update_part(p, SimTime::from_nanos((round * 10 + p) as u64), &local);
            }
        }
        assert!((m.rms() - m.rms_exact()).abs() < 1e-10);
    }

    #[test]
    fn sampling_interval_throttles_series() {
        let (ss, reference) = make();
        let mut dense = Monitor::new(&ss, reference.clone(), SimDuration::ZERO);
        let mut sparse = Monitor::new(&ss, reference, SimDuration::from_nanos(100));
        for k in 0..50u64 {
            let local: Vec<f64> = vec![k as f64; ss.subdomains[0].n_local()];
            dense.update_part(0, SimTime::from_nanos(k * 10), &local);
            sparse.update_part(0, SimTime::from_nanos(k * 10), &local);
        }
        assert_eq!(dense.series().len(), 50);
        assert!(sparse.series().len() < 10);
    }
}

//! # dtm-core — the Directed Transmission Method
//!
//! The paper's contribution (§2, §5–§6): a **fully asynchronous,
//! continuous-time** iterative solver for sparse SPD linear systems.
//!
//! After `dtm-graph` tears the electric graph into subdomains, a **Directed
//! Transmission Line Pair** is inserted between every pair of twin vertices.
//! Each DTL imposes the Directed Transmission Delay Equation
//!
//! ```text
//! U_out(t) + Z·I_out(t) = U_in(t − τ) − Z·I_in(t − τ)        (2.1)
//! ```
//!
//! which turns the neighbour's *delayed* boundary condition into a Robin
//! ("impedance") condition on the local system: the local matrix becomes
//! `A_j + diag(1/z)` on the port rows — **constant**, so it is Cholesky-
//! factored once and every update is a pair of triangular solves (§5's key
//! performance remark). Because each DTL carries its own delay, the
//! algorithm maps one-to-one onto a machine with asymmetric link delays —
//! the *Algorithm-Architecture Delay Mapping*.
//!
//! Modules:
//!
//! * [`dtl`] — the delay-equation algebra (incident/reflected waves);
//! * [`impedance`] — characteristic-impedance selection policies (the free
//!   parameter studied in Fig. 9);
//! * [`local`] — the factor-once local solver of eq. (5.9);
//! * [`runtime`] — the **backend-agnostic DTM runtime**: the one canonical
//!   node state machine (solve-and-scatter, wave merge, Table 1 step 3.3
//!   self-halt) behind the [`runtime::Transport`] /
//!   [`runtime::ExecutorBackend`] trait pair;
//! * [`solver`] — executor: DTM on the simulated heterogeneous machine
//!   (`dtm-simnet`);
//! * [`threaded`] — executor: DTM on real OS threads and channels
//!   (genuinely asynchronous execution);
//! * [`rayon_backend`] — executor: DTM as tasks on an in-process
//!   work-stealing pool;
//! * [`vtm`] — the Virtual Transmission Method: the synchronous, unit-delay
//!   special case (eq. 5.10);
//! * [`baselines`] — synchronous and asynchronous block-Jacobi for the
//!   comparisons the paper's introduction makes;
//! * [`async_baselines`] — **randomized-asynchrony baselines**: randomized
//!   asynchronous Richardson (Avron et al. 2013) and Hong's D-iteration
//!   (2012) as first-class peer solvers behind the same
//!   [`runtime::Transport`] / [`runtime::ExecutorBackend`] contract,
//!   driven by all three executors and compared message for message by
//!   `repro compare`;
//! * [`analysis`] — spectral radius of the VTM iteration operator
//!   (quantitative convergence rates, Fig. 9 cross-check);
//! * [`monitor`] — convergence tracking over time: oracle RMS against the
//!   direct solution, or the reference-free incremental true residual;
//! * [`builder`] — the high-level [`DtmBuilder`] entry point;
//! * [`session`] — **rolling mixed-tolerance sessions**: an admission
//!   queue that swaps right-hand sides into the live block wave as column
//!   slots free up, each ticket under its own termination, with per-column
//!   completion reports — on all three executors;
//! * [`report`] — the shared solve-report vocabulary.
//!
//! ## Quickstart
//!
//! ```
//! use dtm_core::DtmBuilder;
//! use dtm_sparse::generators;
//!
//! let a = generators::grid2d_laplacian(9, 9);
//! let b = vec![1.0; a.n_rows()];
//! let report = DtmBuilder::new(a.clone(), b.clone())
//!     .grid_blocks(9, 9, 2, 2)
//!     .solve()
//!     .unwrap();
//! assert!(report.converged);
//! assert!(a.residual_norm(&report.solution, &b) < 1e-6);
//! ```

pub mod analysis;
pub mod async_baselines;
pub mod baselines;
pub mod builder;
pub mod dtl;
pub mod impedance;
pub mod local;
pub mod monitor;
pub mod rayon_backend;
pub mod report;
pub mod runtime;
pub mod session;
pub mod solver;
pub mod sync;
pub mod threaded;
pub mod vtm;

pub use async_baselines::{
    BaselineAlgo, BaselineConfig, DIteration, DIterationParams, RandomizedRichardson,
    RelaxationSchedule, RichardsonParams,
};
pub use builder::{DtmBuilder, DtmProblem, SolveSession};
pub use impedance::ImpedancePolicy;
pub use local::LocalSystem;
pub use report::{AlgorithmKind, BackendKind, SolveReport};
pub use runtime::{
    AsyncNode, CommonConfig, ExecutorBackend, NodeRuntime, SmallBlock, Termination, Transport,
};
pub use session::{
    ColumnReport, RollingPoolSession, RollingSession, RollingThreadedSession, SessionQueue,
    TicketId,
};
pub use solver::{ComputeModel, DtmConfig};

//! # dtm-graph — electric graphs and Electric Vertex Splitting (EVS)
//!
//! The paper (§3–§4) reformulates a symmetric linear system `A x = b` as an
//! **electric graph**: vertex *i* carries weight `a_ii`, source `b_i` and the
//! unknown potential `x_i`; a nonzero `a_ij` is an edge of weight `a_ij`.
//! **Electric Vertex Splitting** ("wire tearing") then partitions the graph
//! by *splitting* every boundary vertex into twin copies, dividing its
//! weight/source between them and introducing unknown *inflow currents* at
//! the resulting ports — Kirchhoff's current law in matrix form.
//!
//! This crate implements:
//!
//! * [`ElectricGraph`] — the lossless matrix ↔ graph correspondence (§3);
//! * [`plan`] — partition plans: which vertices are inner to which part and
//!   which are split into copies (§4 step 1–2), derivable from any raw
//!   per-vertex assignment;
//! * [`partition`] — assignment generators: 1-D strips and 2-D blocks for
//!   grids ("regularly partitioned … level-one and level-two mixed EVS",
//!   §7), plus BFS growing, recursive bisection, and the multilevel
//!   coarsen–partition–refine scheme for general graphs, all selectable
//!   through [`Partitioner`] and tuned by [`PartitionConfig`];
//! * [`evs`] — the splitting itself (§4 step 3–4): weight/source/edge share
//!   policies, twin/multilevel chain topologies (Fig. 6), and the per-part
//!   [`evs::Subdomain`] local systems of eq. (4.3);
//! * [`validate`] — the reconstruction invariant (the split subsystems sum
//!   back to the original system exactly) and the SNND hypothesis check of
//!   convergence Theorem 6.1.

pub mod electric;
pub mod evs;
pub mod partition;
pub mod plan;
pub mod validate;

pub use electric::ElectricGraph;
pub use evs::{EvsOptions, ExplicitShares, SharePolicy, SplitSystem, Subdomain, TwinTopology};
pub use partition::{multilevel, PartitionConfig, Partitioner};
pub use plan::{Owner, PartitionPlan};

//! Raw per-vertex part assignments for EVS.
//!
//! The paper's experiments use "regularly partitioned" grids (§7): 1-D
//! strips and 2-D blocks that map onto mesh-connected processors, mixing
//! level-one splits (strip/block faces) with higher-level splits where
//! several blocks meet. General graphs get BFS-based partitioners.

use dtm_sparse::ordering::pseudo_peripheral_in;
use dtm_sparse::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BinaryHeap, VecDeque};

pub mod multilevel;
pub use multilevel::{multilevel, refine_assignment};

/// Tunables shared by the graph partitioners, replacing the constants that
/// used to be hard-coded inside [`nested_dissection`] and sized the
/// multilevel pipeline implicitly.
///
/// The [`Default`] values reproduce the pre-config [`nested_dissection`]
/// output bit for bit (pinned by a test) and are the settings every
/// benchmark runs with unless overridden.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionConfig {
    /// Seed for the randomized-greedy coarsening matchings of
    /// [`multilevel()`]. The whole pipeline is deterministic per seed.
    pub seed: u64,
    /// Allowed imbalance fraction for the multilevel partition: every part
    /// keeps weight ≤ [`PartitionConfig::max_part_weight`], roughly
    /// `(1 + balance_slack) · n/k`.
    pub balance_slack: f64,
    /// Coarsening stops once the graph has at most `coarsen_threshold · k`
    /// vertices (or when a matching round stops shrinking the graph).
    pub coarsen_threshold: usize,
    /// Maximum Fiduccia–Mattheyses refinement passes per uncoarsening
    /// level; passes also stop early when one yields no improving prefix.
    pub fm_passes: usize,
    /// Slack-window divisor of the nested-dissection bisections: each
    /// split point may drift from the proportional target by
    /// `len / (nd_slack_divisor · parts) + 1` vertices when that buys a
    /// lower cut. Larger divisors pin the split tighter to the target.
    pub nd_slack_divisor: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        Self {
            seed: 2008,
            balance_slack: 0.08,
            coarsen_threshold: 100,
            fm_passes: 8,
            nd_slack_divisor: 8,
        }
    }
}

impl PartitionConfig {
    /// Maximum part weight the multilevel refinement keeps:
    /// `ceil((1 + balance_slack) · total/k)`, floored at `total/k + 1` so
    /// the constraint stays satisfiable for tiny parts where one vertex is
    /// a large weight fraction.
    pub fn max_part_weight(&self, total: u64, k: usize) -> u64 {
        let avg = total as f64 / k as f64;
        let slack_cap = ((1.0 + self.balance_slack) * avg).ceil() as u64;
        slack_cap.max(total / k as u64 + 1)
    }

    /// Minimum part weight the refinement keeps:
    /// `floor((1 - balance_slack) · total/k)`, at least 1 (no part is ever
    /// emptied).
    pub fn min_part_weight(&self, total: u64, k: usize) -> u64 {
        let avg = total as f64 / k as f64;
        (((1.0 - self.balance_slack) * avg).floor() as u64).max(1)
    }
}

/// Which assignment generator to run — the `repro bench --partitioner`
/// knob, also selectable through
/// [`DtmBuilder::partitioner`](../../dtm_core/builder/struct.DtmBuilder.html)
/// and [`crate::PartitionPlan::from_partitioner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioner {
    /// Contiguous index ranges (`k` equal slabs of the vertex numbering) —
    /// the 1-D baseline; on grid-ordered matrices these are axis slabs.
    Strips,
    /// Multi-source BFS growing ([`greedy_grow`]).
    Greedy,
    /// Recursive low-cut bisection ([`nested_dissection`]).
    NestedDissection,
    /// Coarsen–partition–refine ([`multilevel()`]).
    Multilevel,
}

impl Partitioner {
    /// Smallest system the size-based default partitions with
    /// [`Partitioner::Multilevel`]: 32³ unknowns. Below it the coarsening
    /// work outweighs the separator-quality win.
    pub const MULTILEVEL_MIN_N: usize = 32 * 32 * 32;

    /// The size-based default: [`Partitioner::Multilevel`] for systems of
    /// [`MULTILEVEL_MIN_N`](Self::MULTILEVEL_MIN_N) = 32³ unknowns or
    /// more, [`Partitioner::NestedDissection`] below. This is what the
    /// bench suite's grid cases and
    /// [`DtmBuilder::partition_auto`](../../dtm_core/builder/struct.DtmBuilder.html#method.partition_auto)
    /// run when no partitioner is named explicitly.
    pub fn default_for(n: usize) -> Self {
        if n >= Self::MULTILEVEL_MIN_N {
            Self::Multilevel
        } else {
            Self::NestedDissection
        }
    }

    /// Parse a `--partitioner` argument value.
    pub fn parse(value: &str) -> Option<Self> {
        match value {
            "strips" => Some(Self::Strips),
            "greedy" => Some(Self::Greedy),
            "nd" => Some(Self::NestedDissection),
            "ml" => Some(Self::Multilevel),
            _ => None,
        }
    }

    /// The CLI/report name (`strips`, `greedy`, `nd`, `ml`).
    pub fn name(self) -> &'static str {
        match self {
            Self::Strips => "strips",
            Self::Greedy => "greedy",
            Self::NestedDissection => "nd",
            Self::Multilevel => "ml",
        }
    }

    /// Stable numeric id for machine-readable reports (bench JSON metrics
    /// are numbers): strips = 0, greedy = 1, nd = 2, ml = 3.
    pub fn id(self) -> usize {
        match self {
            Self::Strips => 0,
            Self::Greedy => 1,
            Self::NestedDissection => 2,
            Self::Multilevel => 3,
        }
    }

    /// Run this partitioner on a general graph.
    ///
    /// # Panics
    /// Panics if `k == 0` or `k > n` (every generator's own contract).
    pub fn assign(self, a: &Csr, k: usize, config: &PartitionConfig) -> Vec<usize> {
        match self {
            Self::Strips => index_strips(a.n_rows(), k),
            Self::Greedy => greedy_grow(a, k, config.seed),
            Self::NestedDissection => nested_dissection_with(a, k, config),
            Self::Multilevel => multilevel(a, k, config),
        }
    }
}

/// Contiguous index-range assignment: vertex `v` goes to part `v·k/n`.
/// On grid-ordered matrices these are axis-aligned slabs — the 1-D
/// strip baseline generalized to any dimension/ordering.
///
/// # Panics
/// Panics if `k == 0` or `k > n`.
pub fn index_strips(n: usize, k: usize) -> Vec<usize> {
    assert!(k >= 1 && k <= n.max(1), "need 1 ≤ k ≤ n");
    (0..n).map(|v| v * k / n).collect()
}

/// Column-strip assignment of an `nx × ny` grid into `k` strips
/// (vertex `(x, y)` has index `y * nx + x`).
///
/// # Panics
/// Panics if `k == 0` or `k > nx`.
pub fn grid_strips(nx: usize, ny: usize, k: usize) -> Vec<usize> {
    assert!(k >= 1 && k <= nx, "need 1 ≤ k ≤ nx");
    let mut assignment = vec![0usize; nx * ny];
    for y in 0..ny {
        for x in 0..nx {
            assignment[y * nx + x] = x * k / nx;
        }
    }
    assignment
}

/// 2-D block assignment of an `nx × ny` grid into `px × py` blocks; block
/// `(bx, by)` is part `by * px + bx`. This is the paper's "level-one and
/// level-two mixed" regular partitioning: vertices on a block face split
/// 2-way, vertices near block corners split 3-way (5-point stencil).
///
/// # Panics
/// Panics if `px > nx` or `py > ny` or either is zero.
pub fn grid_blocks(nx: usize, ny: usize, px: usize, py: usize) -> Vec<usize> {
    assert!(px >= 1 && px <= nx, "need 1 ≤ px ≤ nx");
    assert!(py >= 1 && py <= ny, "need 1 ≤ py ≤ ny");
    let mut assignment = vec![0usize; nx * ny];
    for y in 0..ny {
        for x in 0..nx {
            let bx = x * px / nx;
            let by = y * py / ny;
            assignment[y * nx + x] = by * px + bx;
        }
    }
    assignment
}

/// Multi-source BFS ("greedy growing") assignment of a general graph into
/// `k` parts: `k` seeds spread by a seeded RNG, parts grow one frontier
/// vertex at a time, always extending the currently smallest part.
pub fn greedy_grow(a: &Csr, k: usize, seed: u64) -> Vec<usize> {
    let n = a.n_rows();
    assert!(k >= 1 && k <= n.max(1), "need 1 ≤ k ≤ n");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut assignment = vec![usize::MAX; n];
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); k];
    let mut sizes = vec![0usize; k];

    // Distinct random seeds.
    let mut chosen = Vec::with_capacity(k);
    while chosen.len() < k {
        let v = rng.gen_range(0..n);
        if !chosen.contains(&v) {
            chosen.push(v);
        }
    }
    for (p, &v) in chosen.iter().enumerate() {
        assignment[v] = p;
        sizes[p] += 1;
        queues[p].push_back(v);
    }

    let mut remaining = n - k;
    while remaining > 0 {
        // Grow the smallest part that still has a frontier.
        let p = match (0..k)
            .filter(|&p| !queues[p].is_empty())
            .min_by_key(|&p| sizes[p])
        {
            Some(p) => p,
            None => {
                // Disconnected leftover: seed the smallest part anywhere.
                // `remaining > 0` implies an unassigned vertex and `k ≥ 1`
                // a smallest part; bail out rather than panic if either
                // invariant is somehow broken.
                let (Some(v), Some(p)) = (
                    (0..n).find(|&v| assignment[v] == usize::MAX),
                    (0..k).min_by_key(|&p| sizes[p]),
                ) else {
                    break;
                };
                assignment[v] = p;
                sizes[p] += 1;
                queues[p].push_back(v);
                remaining -= 1;
                continue;
            }
        };
        let mut grew = false;
        while let Some(&u) = queues[p].front() {
            let next = a
                .row(u)
                .map(|(c, _)| c)
                .find(|&c| c != u && assignment[c] == usize::MAX);
            match next {
                Some(v) => {
                    assignment[v] = p;
                    sizes[p] += 1;
                    queues[p].push_back(v);
                    remaining -= 1;
                    grew = true;
                    break;
                }
                None => {
                    queues[p].pop_front();
                }
            }
        }
        let _ = grew;
    }
    assignment
}

/// Recursive bisection by BFS level sets: split at the median BFS level,
/// recurse `levels` times, producing `2^levels` parts.
pub fn recursive_bisection(a: &Csr, levels: usize) -> Vec<usize> {
    let n = a.n_rows();
    let mut assignment = vec![0usize; n];
    let mut groups: Vec<Vec<usize>> = vec![(0..n).collect()];
    for _ in 0..levels {
        let mut next_groups = Vec::with_capacity(groups.len() * 2);
        for group in groups {
            let (lo, hi) = bisect(a, &group);
            next_groups.push(lo);
            next_groups.push(hi);
        }
        groups = next_groups;
    }
    for (p, group) in groups.iter().enumerate() {
        for &v in group {
            assignment[v] = p;
        }
    }
    assignment
}

/// Split one vertex group in half along BFS layers from its lowest-index
/// vertex; ties broken by index so the result is deterministic.
fn bisect(a: &Csr, group: &[usize]) -> (Vec<usize>, Vec<usize>) {
    if group.len() < 2 {
        return (group.to_vec(), Vec::new());
    }
    let inside: std::collections::HashSet<usize> = group.iter().copied().collect();
    let mut level = std::collections::HashMap::new();
    let mut order = Vec::with_capacity(group.len());
    // Cover disconnected pieces of the group too.
    for &start in group {
        if level.contains_key(&start) {
            continue;
        }
        level.insert(start, 0usize);
        let mut q = VecDeque::from([start]);
        while let Some(u) = q.pop_front() {
            order.push(u);
            for (c, _) in a.row(u) {
                if c != u && inside.contains(&c) && !level.contains_key(&c) {
                    level.insert(c, level[&u] + 1);
                    q.push_back(c);
                }
            }
        }
    }
    let half = group.len() / 2;
    // BFS visit order approximates level ordering; cut at the median.
    let lo = order[..half].to_vec();
    let hi = order[half..].to_vec();
    (lo, hi)
}

/// Multilevel nested-dissection assignment of a general graph into `k`
/// parts: the vertex set is split recursively by low-cut vertex
/// separators, so subdomain factors stay small and the boundary cut stays
/// low where [`grid_strips`]/[`greedy_grow`] blow up (a strip partition of
/// an `s×s×s` grid pays an `s²` face per boundary *per strip*; dissection
/// halves the domain along its shortest extent at every level).
///
/// Each bisection grows one side greedily by maximum gain (neighbours
/// inside minus neighbours outside — Fiduccia–Mattheyses-style) from a
/// pseudo-peripheral seed found with the BFS machinery behind
/// [`dtm_sparse::ordering::reverse_cuthill_mckee`]
/// ([`pseudo_peripheral_in`]). Two growth orientations (index-ascending /
/// index-descending tie-breaks) are tried and the lower-cut one kept; the
/// split size may drift from the proportional target by a small slack when
/// that buys a straighter separator. Part counts need not be powers of
/// two: `k` is divided as evenly as the recursion tree allows. The result
/// is deterministic.
///
/// # Panics
/// Panics if `k == 0` or `k > n`.
pub fn nested_dissection(a: &Csr, k: usize) -> Vec<usize> {
    nested_dissection_with(a, k, &PartitionConfig::default())
}

/// [`nested_dissection`] with explicit [`PartitionConfig`] tunables (the
/// slack window that used to be a hard-coded constant). The default config
/// reproduces [`nested_dissection`]'s historical output bit for bit.
///
/// # Panics
/// Panics if `k == 0` or `k > n`.
pub fn nested_dissection_with(a: &Csr, k: usize, config: &PartitionConfig) -> Vec<usize> {
    let n = a.n_rows();
    assert!(k >= 1 && k <= n.max(1), "need 1 ≤ k ≤ n");
    let mut assignment = vec![0usize; n];
    let mut next_part = 0usize;
    // DFS over (vertex group, parts to produce); left pushed last so part
    // ids come out in left-to-right recursion order.
    let mut stack: Vec<(Vec<usize>, usize)> = vec![((0..n).collect(), k)];
    while let Some((group, parts)) = stack.pop() {
        if parts == 1 {
            for &v in &group {
                assignment[v] = next_part;
            }
            next_part += 1;
            continue;
        }
        let kl = parts / 2;
        let kr = parts - kl;
        let (left, right) = bisect_grow(a, &group, kl, kr, config);
        stack.push((right, kr));
        stack.push((left, kl));
    }
    assignment
}

/// One nested-dissection bisection: split `group` into a `kl : kr`
/// proportioned pair of vertex sets with a low cut between them.
fn bisect_grow(
    a: &Csr,
    group: &[usize],
    kl: usize,
    kr: usize,
    config: &PartitionConfig,
) -> (Vec<usize>, Vec<usize>) {
    let parts = kl + kr;
    let len = group.len();
    debug_assert!(len >= parts, "recursion keeps every group ≥ its part count");
    let target = len * kl / parts;
    // Allow the split point to drift a little around the proportional
    // target when that buys a lower cut (a straight separator on an
    // odd-sized grid, say). Both sides must keep at least one vertex per
    // part they still owe.
    let slack = len / (config.nd_slack_divisor.max(1) * parts) + 1;
    let min_size = (target.saturating_sub(slack)).max(kl);
    let max_size = (target + slack).min(len - kr);
    let lo = grow_region(a, group, max_size, true);
    let hi = grow_region(a, group, max_size, false);
    let (lo_size, lo_cut) = lo.best_in(min_size, max_size, target);
    let (hi_size, hi_cut) = hi.best_in(min_size, max_size, target);
    // Lower cut wins; ties keep the index-ascending orientation.
    let (order, best_size) =
        if (hi_cut, hi_size.abs_diff(target)) < (lo_cut, lo_size.abs_diff(target)) {
            (hi.order, hi_size)
        } else {
            (lo.order, lo_size)
        };
    let mut left = order[..best_size].to_vec();
    left.sort_unstable();
    let mut in_left = vec![false; a.n_rows()];
    for &v in &left {
        in_left[v] = true;
    }
    let right: Vec<usize> = group.iter().copied().filter(|&v| !in_left[v]).collect();
    (left, right)
}

/// A greedy growth run: the order vertices entered the region and the cut
/// size after each addition.
struct GrowRun {
    order: Vec<usize>,
    /// `cuts[s]` = edges between the first `s + 1` vertices and the rest
    /// of the group.
    cuts: Vec<i64>,
}

impl GrowRun {
    /// Best prefix size in `[min_size, max_size]`: lowest cut, ties to the
    /// size closest to `target` (then the smaller size — deterministic).
    fn best_in(&self, min_size: usize, max_size: usize, target: usize) -> (usize, i64) {
        (min_size..=max_size)
            .filter_map(|s| self.cuts.get(s.wrapping_sub(1)).map(|&cut| (s, cut)))
            .min_by_key(|&(s, cut)| (cut, s.abs_diff(target), s))
            // An empty or short-grown window loses every comparison: the
            // caller keeps the other orientation.
            .unwrap_or((self.order.len(), i64::MAX))
    }
}

/// Grow a region of `max_size` vertices inside `group` by repeatedly
/// absorbing the frontier vertex of maximum gain (neighbours inside minus
/// neighbours outside). `prefer_low` breaks gain ties toward the smallest
/// vertex index, its negation toward the largest — on index-regular graphs
/// (grids) the two orientations fill along different axes, and the caller
/// keeps whichever cut is lower. Seeded from a pseudo-peripheral vertex of
/// the group; disconnected groups reseed at the lowest unreached vertex.
fn grow_region(a: &Csr, group: &[usize], max_size: usize, prefer_low: bool) -> GrowRun {
    let n = a.n_rows();
    let mut in_group = vec![false; n];
    for &v in group {
        in_group[v] = true;
    }
    let seed = pseudo_peripheral_in(a, group[0], |v| in_group[v]);

    // Tie-break key: max-heap pops the largest (gain, key) pair.
    let key = |v: usize| {
        if prefer_low {
            -(v as i64)
        } else {
            v as i64
        }
    };
    let mut in_region = vec![false; n];
    let mut seen = vec![false; n];
    let mut gain = vec![0i64; n];
    let mut heap: BinaryHeap<(i64, i64, usize)> = BinaryHeap::new();
    let fresh_gain = |v: usize, in_region: &[bool]| -> i64 {
        let mut g = 0i64;
        for (c, _) in a.row(v) {
            if c != v && in_group[c] {
                g += if in_region[c] { 1 } else { -1 };
            }
        }
        g
    };
    seen[seed] = true;
    gain[seed] = fresh_gain(seed, &in_region);
    heap.push((gain[seed], key(seed), seed));

    let mut order = Vec::with_capacity(max_size);
    let mut cuts = Vec::with_capacity(max_size);
    let mut cut = 0i64;
    while order.len() < max_size {
        let v = match heap.pop() {
            // Lazy deletion: stale entries carry an outdated gain or a
            // vertex already absorbed.
            Some((g, _, v)) if !in_region[v] && g == gain[v] => v,
            Some(_) => continue,
            None => {
                // Disconnected group: reseed at the lowest unreached
                // vertex. `order.len() < max_size ≤ |group|` guarantees
                // one exists; stop growing if that invariant breaks.
                let Some(&v) = group.iter().find(|&&v| !in_region[v]) else {
                    break;
                };
                seen[v] = true;
                gain[v] = fresh_gain(v, &in_region);
                heap.push((gain[v], key(v), v));
                continue;
            }
        };
        in_region[v] = true;
        cut -= gain[v]; // −gain = new cut edges − edges absorbed
        order.push(v);
        cuts.push(cut);
        for (c, _) in a.row(v) {
            if c == v || !in_group[c] || in_region[c] {
                continue;
            }
            if seen[c] {
                // One more neighbour inside: the edge to `v` flipped sides.
                gain[c] += 2;
            } else {
                seen[c] = true;
                gain[c] = fresh_gain(c, &in_region);
            }
            heap.push((gain[c], key(c), c));
        }
    }
    GrowRun { order, cuts }
}

/// Quality metrics of a raw assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionMetrics {
    /// Vertices per part.
    pub sizes: Vec<usize>,
    /// Number of vertices with a neighbour in a foreign part (these become
    /// split vertices under EVS).
    pub boundary_vertices: usize,
    /// Number of edges whose endpoints lie in different parts.
    pub cut_edges: usize,
    /// `max(sizes) / mean(sizes)` — 1.0 is perfect balance.
    pub imbalance: f64,
}

/// Compute [`PartitionMetrics`] for an assignment.
pub fn metrics(a: &Csr, assignment: &[usize]) -> PartitionMetrics {
    assert_eq!(a.n_rows(), assignment.len(), "metrics: assignment length");
    let k = assignment.iter().copied().max().map_or(0, |m| m + 1);
    let mut sizes = vec![0usize; k];
    for &p in assignment {
        sizes[p] += 1;
    }
    let mut boundary = 0usize;
    let mut cut = 0usize;
    for u in 0..a.n_rows() {
        let mut is_boundary = false;
        for (v, _) in a.row(u) {
            if v == u {
                continue;
            }
            if assignment[v] != assignment[u] {
                is_boundary = true;
                if v > u {
                    cut += 1;
                }
            }
        }
        if is_boundary {
            boundary += 1;
        }
    }
    let mean = assignment.len() as f64 / k.max(1) as f64;
    let imbalance = sizes.iter().copied().max().unwrap_or(0) as f64 / mean.max(1e-300);
    PartitionMetrics {
        sizes,
        boundary_vertices: boundary,
        cut_edges: cut,
        imbalance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_sparse::generators;

    #[test]
    fn strips_cover_all_parts_evenly() {
        let a = generators::grid2d_laplacian(8, 4);
        let asg = grid_strips(8, 4, 4);
        let m = metrics(&a, &asg);
        assert_eq!(m.sizes, vec![8, 8, 8, 8]);
        assert!((m.imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strips_boundary_is_two_columns_per_cut() {
        let a = generators::grid2d_laplacian(8, 4);
        let asg = grid_strips(8, 4, 2);
        let m = metrics(&a, &asg);
        // Cut between x=3 and x=4: both columns are boundary → 2 * ny.
        assert_eq!(m.boundary_vertices, 8);
        assert_eq!(m.cut_edges, 4);
    }

    #[test]
    fn blocks_partition_paper_grid() {
        // The paper's 16-processor experiment: 17×17 grid on a 4×4 mesh.
        let nx = 17;
        let a = generators::grid2d_laplacian(nx, nx);
        let asg = grid_blocks(nx, nx, 4, 4);
        let m = metrics(&a, &asg);
        assert_eq!(m.sizes.len(), 16);
        assert!(m.sizes.iter().all(|&s| s > 0));
        assert!(m.imbalance < 1.6, "imbalance {}", m.imbalance);
    }

    #[test]
    fn block_ids_follow_row_major_mesh() {
        let asg = grid_blocks(4, 4, 2, 2);
        assert_eq!(asg[0], 0); // (0,0)
        assert_eq!(asg[3], 1); // (3,0) → right block
        assert_eq!(asg[12], 2); // (0,3) → lower-left block
        assert_eq!(asg[15], 3); // (3,3)
    }

    #[test]
    fn greedy_grow_covers_and_balances() {
        let a = generators::grid2d_laplacian(10, 10);
        let asg = greedy_grow(&a, 4, 42);
        assert!(asg.iter().all(|&p| p < 4));
        let m = metrics(&a, &asg);
        assert_eq!(m.sizes.iter().sum::<usize>(), 100);
        assert!(m.sizes.iter().all(|&s| s > 0));
        assert!(m.imbalance < 1.5, "imbalance {}", m.imbalance);
    }

    #[test]
    fn greedy_grow_deterministic_per_seed() {
        let a = generators::grid2d_laplacian(6, 6);
        assert_eq!(greedy_grow(&a, 3, 7), greedy_grow(&a, 3, 7));
    }

    #[test]
    fn greedy_grow_handles_disconnected() {
        // Two disconnected 2-paths; 2 parts must still cover everything.
        let mut coo = dtm_sparse::Coo::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 2.0).unwrap();
        }
        coo.push_sym(0, 1, -1.0).unwrap();
        coo.push_sym(2, 3, -1.0).unwrap();
        let a = coo.to_csr();
        let asg = greedy_grow(&a, 2, 1);
        assert!(asg.iter().all(|&p| p < 2));
    }

    #[test]
    fn recursive_bisection_produces_power_of_two_parts() {
        let a = generators::grid2d_laplacian(8, 8);
        let asg = recursive_bisection(&a, 2);
        let m = metrics(&a, &asg);
        assert_eq!(m.sizes.len(), 4);
        assert_eq!(m.sizes.iter().sum::<usize>(), 64);
        assert!(m.sizes.iter().all(|&s| s >= 8), "sizes {:?}", m.sizes);
    }

    #[test]
    fn nested_dissection_covers_all_parts_and_balances() {
        for &(nx, ny, k) in &[
            (8, 8, 4),
            (10, 10, 3),
            (16, 4, 2),
            (4, 16, 4),
            (9, 9, 2),
            (7, 5, 5),
        ] {
            let a = generators::grid2d_laplacian(nx, ny);
            let asg = nested_dissection(&a, k);
            let m = metrics(&a, &asg);
            assert_eq!(m.sizes.len(), k, "{nx}×{ny} k={k}");
            assert!(
                m.sizes.iter().all(|&s| s > 0),
                "{nx}×{ny} k={k}: {:?}",
                m.sizes
            );
            assert_eq!(m.sizes.iter().sum::<usize>(), nx * ny);
            assert!(
                m.imbalance < 1.3,
                "{nx}×{ny} k={k}: imbalance {} sizes {:?}",
                m.imbalance,
                m.sizes
            );
        }
    }

    #[test]
    fn nested_dissection_cut_no_worse_than_strips_on_2d_grids() {
        // The headline property: on grids (square, wide, tall, odd) the
        // dissection cut never exceeds the column-strip cut, for part
        // counts that are and are not powers of two.
        for &(nx, ny) in &[(8, 8), (9, 9), (16, 4), (4, 16), (12, 6), (17, 17)] {
            for k in [2usize, 3, 4] {
                if k > nx {
                    continue;
                }
                let a = generators::grid2d_laplacian(nx, ny);
                let nd = metrics(&a, &nested_dissection(&a, k));
                let st = metrics(&a, &grid_strips(nx, ny, k));
                assert!(
                    nd.cut_edges <= st.cut_edges,
                    "{nx}×{ny} k={k}: dissection cut {} > strips cut {}",
                    nd.cut_edges,
                    st.cut_edges
                );
            }
        }
    }

    #[test]
    fn nested_dissection_is_deterministic() {
        let a = generators::grid2d_laplacian(11, 7);
        assert_eq!(nested_dissection(&a, 5), nested_dissection(&a, 5));
    }

    #[test]
    fn nested_dissection_handles_disconnected_graphs() {
        let mut coo = dtm_sparse::Coo::new(6, 6);
        for i in 0..6 {
            coo.push(i, i, 2.0).unwrap();
        }
        coo.push_sym(0, 1, -1.0).unwrap();
        coo.push_sym(3, 4, -1.0).unwrap();
        let a = coo.to_csr();
        let asg = nested_dissection(&a, 3);
        let m = metrics(&a, &asg);
        assert_eq!(m.sizes.len(), 3);
        assert!(m.sizes.iter().all(|&s| s > 0));
    }

    /// FNV-1a over a part assignment — compact fingerprint for the
    /// bit-for-bit pin tests.
    fn fingerprint(assignment: &[usize]) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for &p in assignment {
            h ^= p as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    #[test]
    fn nested_dissection_default_config_is_bit_for_bit_stable() {
        // The PartitionConfig refactor must not move a single vertex: these
        // fingerprints were captured from the pre-config implementation
        // (hard-coded slack divisor 8).
        for (a, k, cut, fnv) in [
            (
                generators::grid2d_laplacian(17, 17),
                4usize,
                34usize,
                0xf7b6bb14abf0030a_u64,
            ),
            (
                generators::grid2d_laplacian(9, 9),
                3,
                15,
                0x1aba6ef237119d07,
            ),
            (
                generators::grid3d_laplacian(8, 8, 8),
                4,
                128,
                0xc1016ae831910e25,
            ),
            (
                generators::grid3d_laplacian(10, 10, 10),
                6,
                308,
                0x7b59279261947ad1,
            ),
        ] {
            let asg = nested_dissection(&a, k);
            assert_eq!(metrics(&a, &asg).cut_edges, cut);
            assert_eq!(fingerprint(&asg), fnv, "assignment drifted (k = {k})");
            let cfg = PartitionConfig::default();
            assert_eq!(asg, nested_dissection_with(&a, k, &cfg));
        }
    }

    #[test]
    fn nd_slack_divisor_is_live() {
        // A much larger divisor pins the split to the proportional target;
        // on an odd grid that must change the assignment (the knob is
        // actually wired through, not decorative).
        let a = generators::grid2d_laplacian(9, 9);
        let tight = PartitionConfig {
            nd_slack_divisor: 10_000,
            ..PartitionConfig::default()
        };
        let loose = nested_dissection(&a, 2);
        let pinned = nested_dissection_with(&a, 2, &tight);
        let m = metrics(&a, &pinned);
        assert_eq!(m.sizes, vec![40, 41], "divisor 10k forces the exact target");
        assert_ne!(loose, pinned);
    }

    #[test]
    fn index_strips_cover_contiguously() {
        let asg = index_strips(10, 3);
        assert_eq!(asg, vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
        let a = generators::grid2d_laplacian(4, 4);
        let m = metrics(&a, &index_strips(16, 4));
        assert_eq!(m.sizes, vec![4, 4, 4, 4]);
    }

    #[test]
    fn partitioner_parse_and_assign_roundtrip() {
        let a = generators::grid2d_laplacian(8, 8);
        let cfg = PartitionConfig::default();
        for (s, p) in [
            ("strips", Partitioner::Strips),
            ("greedy", Partitioner::Greedy),
            ("nd", Partitioner::NestedDissection),
            ("ml", Partitioner::Multilevel),
        ] {
            assert_eq!(Partitioner::parse(s), Some(p));
            assert_eq!(Partitioner::parse(p.name()), Some(p));
            let asg = p.assign(&a, 4, &cfg);
            let m = metrics(&a, &asg);
            assert_eq!(m.sizes.iter().sum::<usize>(), 64, "{s} covers");
            assert_eq!(m.sizes.len(), 4, "{s} populates every part");
        }
        assert_eq!(Partitioner::parse("metis"), None);
        let ids: Vec<usize> = [
            Partitioner::Strips,
            Partitioner::Greedy,
            Partitioner::NestedDissection,
            Partitioner::Multilevel,
        ]
        .iter()
        .map(|p| p.id())
        .collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn size_based_default_switches_at_32_cubed() {
        assert_eq!(
            Partitioner::default_for(Partitioner::MULTILEVEL_MIN_N - 1),
            Partitioner::NestedDissection
        );
        assert_eq!(
            Partitioner::default_for(Partitioner::MULTILEVEL_MIN_N),
            Partitioner::Multilevel
        );
        assert_eq!(
            Partitioner::default_for(16 * 16 * 16),
            Partitioner::NestedDissection
        );
        assert_eq!(
            Partitioner::default_for(48 * 48 * 48),
            Partitioner::Multilevel
        );
    }

    #[test]
    fn part_weight_bounds_are_sane() {
        let cfg = PartitionConfig::default();
        // Roomy case: 8% slack above the 125 average.
        assert_eq!(cfg.max_part_weight(1000, 8), 135);
        assert!(cfg.min_part_weight(1000, 8) >= 1);
        // Tiny parts: the floor keeps the bound satisfiable (avg + 1).
        assert_eq!(cfg.max_part_weight(16, 8), 3);
        assert_eq!(cfg.min_part_weight(3, 3), 1);
    }

    #[test]
    fn metrics_single_part() {
        let a = generators::grid2d_laplacian(3, 3);
        let m = metrics(&a, &[0; 9]);
        assert_eq!(m.boundary_vertices, 0);
        assert_eq!(m.cut_edges, 0);
        assert_eq!(m.sizes, vec![9]);
    }
}

//! Raw per-vertex part assignments for EVS.
//!
//! The paper's experiments use "regularly partitioned" grids (§7): 1-D
//! strips and 2-D blocks that map onto mesh-connected processors, mixing
//! level-one splits (strip/block faces) with higher-level splits where
//! several blocks meet. General graphs get BFS-based partitioners.

use dtm_sparse::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Column-strip assignment of an `nx × ny` grid into `k` strips
/// (vertex `(x, y)` has index `y * nx + x`).
///
/// # Panics
/// Panics if `k == 0` or `k > nx`.
pub fn grid_strips(nx: usize, ny: usize, k: usize) -> Vec<usize> {
    assert!(k >= 1 && k <= nx, "need 1 ≤ k ≤ nx");
    let mut assignment = vec![0usize; nx * ny];
    for y in 0..ny {
        for x in 0..nx {
            assignment[y * nx + x] = x * k / nx;
        }
    }
    assignment
}

/// 2-D block assignment of an `nx × ny` grid into `px × py` blocks; block
/// `(bx, by)` is part `by * px + bx`. This is the paper's "level-one and
/// level-two mixed" regular partitioning: vertices on a block face split
/// 2-way, vertices near block corners split 3-way (5-point stencil).
///
/// # Panics
/// Panics if `px > nx` or `py > ny` or either is zero.
pub fn grid_blocks(nx: usize, ny: usize, px: usize, py: usize) -> Vec<usize> {
    assert!(px >= 1 && px <= nx, "need 1 ≤ px ≤ nx");
    assert!(py >= 1 && py <= ny, "need 1 ≤ py ≤ ny");
    let mut assignment = vec![0usize; nx * ny];
    for y in 0..ny {
        for x in 0..nx {
            let bx = x * px / nx;
            let by = y * py / ny;
            assignment[y * nx + x] = by * px + bx;
        }
    }
    assignment
}

/// Multi-source BFS ("greedy growing") assignment of a general graph into
/// `k` parts: `k` seeds spread by a seeded RNG, parts grow one frontier
/// vertex at a time, always extending the currently smallest part.
pub fn greedy_grow(a: &Csr, k: usize, seed: u64) -> Vec<usize> {
    let n = a.n_rows();
    assert!(k >= 1 && k <= n.max(1), "need 1 ≤ k ≤ n");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut assignment = vec![usize::MAX; n];
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); k];
    let mut sizes = vec![0usize; k];

    // Distinct random seeds.
    let mut chosen = Vec::with_capacity(k);
    while chosen.len() < k {
        let v = rng.gen_range(0..n);
        if !chosen.contains(&v) {
            chosen.push(v);
        }
    }
    for (p, &v) in chosen.iter().enumerate() {
        assignment[v] = p;
        sizes[p] += 1;
        queues[p].push_back(v);
    }

    let mut remaining = n - k;
    while remaining > 0 {
        // Grow the smallest part that still has a frontier.
        let p = match (0..k)
            .filter(|&p| !queues[p].is_empty())
            .min_by_key(|&p| sizes[p])
        {
            Some(p) => p,
            None => {
                // Disconnected leftover: seed the smallest part anywhere.
                let v = (0..n)
                    .find(|&v| assignment[v] == usize::MAX)
                    .expect("remaining > 0 implies an unassigned vertex exists");
                let p = (0..k).min_by_key(|&p| sizes[p]).expect("k ≥ 1");
                assignment[v] = p;
                sizes[p] += 1;
                queues[p].push_back(v);
                remaining -= 1;
                continue;
            }
        };
        let mut grew = false;
        while let Some(&u) = queues[p].front() {
            let next = a
                .row(u)
                .map(|(c, _)| c)
                .find(|&c| c != u && assignment[c] == usize::MAX);
            match next {
                Some(v) => {
                    assignment[v] = p;
                    sizes[p] += 1;
                    queues[p].push_back(v);
                    remaining -= 1;
                    grew = true;
                    break;
                }
                None => {
                    queues[p].pop_front();
                }
            }
        }
        let _ = grew;
    }
    assignment
}

/// Recursive bisection by BFS level sets: split at the median BFS level,
/// recurse `levels` times, producing `2^levels` parts.
pub fn recursive_bisection(a: &Csr, levels: usize) -> Vec<usize> {
    let n = a.n_rows();
    let mut assignment = vec![0usize; n];
    let mut groups: Vec<Vec<usize>> = vec![(0..n).collect()];
    for _ in 0..levels {
        let mut next_groups = Vec::with_capacity(groups.len() * 2);
        for group in groups {
            let (lo, hi) = bisect(a, &group);
            next_groups.push(lo);
            next_groups.push(hi);
        }
        groups = next_groups;
    }
    for (p, group) in groups.iter().enumerate() {
        for &v in group {
            assignment[v] = p;
        }
    }
    assignment
}

/// Split one vertex group in half along BFS layers from its lowest-index
/// vertex; ties broken by index so the result is deterministic.
fn bisect(a: &Csr, group: &[usize]) -> (Vec<usize>, Vec<usize>) {
    if group.len() < 2 {
        return (group.to_vec(), Vec::new());
    }
    let inside: std::collections::HashSet<usize> = group.iter().copied().collect();
    let mut level = std::collections::HashMap::new();
    let mut order = Vec::with_capacity(group.len());
    // Cover disconnected pieces of the group too.
    for &start in group {
        if level.contains_key(&start) {
            continue;
        }
        level.insert(start, 0usize);
        let mut q = VecDeque::from([start]);
        while let Some(u) = q.pop_front() {
            order.push(u);
            for (c, _) in a.row(u) {
                if c != u && inside.contains(&c) && !level.contains_key(&c) {
                    level.insert(c, level[&u] + 1);
                    q.push_back(c);
                }
            }
        }
    }
    let half = group.len() / 2;
    // BFS visit order approximates level ordering; cut at the median.
    let lo = order[..half].to_vec();
    let hi = order[half..].to_vec();
    (lo, hi)
}

/// Quality metrics of a raw assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionMetrics {
    /// Vertices per part.
    pub sizes: Vec<usize>,
    /// Number of vertices with a neighbour in a foreign part (these become
    /// split vertices under EVS).
    pub boundary_vertices: usize,
    /// Number of edges whose endpoints lie in different parts.
    pub cut_edges: usize,
    /// `max(sizes) / mean(sizes)` — 1.0 is perfect balance.
    pub imbalance: f64,
}

/// Compute [`PartitionMetrics`] for an assignment.
pub fn metrics(a: &Csr, assignment: &[usize]) -> PartitionMetrics {
    assert_eq!(a.n_rows(), assignment.len(), "metrics: assignment length");
    let k = assignment.iter().copied().max().map_or(0, |m| m + 1);
    let mut sizes = vec![0usize; k];
    for &p in assignment {
        sizes[p] += 1;
    }
    let mut boundary = 0usize;
    let mut cut = 0usize;
    for u in 0..a.n_rows() {
        let mut is_boundary = false;
        for (v, _) in a.row(u) {
            if v == u {
                continue;
            }
            if assignment[v] != assignment[u] {
                is_boundary = true;
                if v > u {
                    cut += 1;
                }
            }
        }
        if is_boundary {
            boundary += 1;
        }
    }
    let mean = assignment.len() as f64 / k.max(1) as f64;
    let imbalance = sizes.iter().copied().max().unwrap_or(0) as f64 / mean.max(1e-300);
    PartitionMetrics {
        sizes,
        boundary_vertices: boundary,
        cut_edges: cut,
        imbalance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_sparse::generators;

    #[test]
    fn strips_cover_all_parts_evenly() {
        let a = generators::grid2d_laplacian(8, 4);
        let asg = grid_strips(8, 4, 4);
        let m = metrics(&a, &asg);
        assert_eq!(m.sizes, vec![8, 8, 8, 8]);
        assert!((m.imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strips_boundary_is_two_columns_per_cut() {
        let a = generators::grid2d_laplacian(8, 4);
        let asg = grid_strips(8, 4, 2);
        let m = metrics(&a, &asg);
        // Cut between x=3 and x=4: both columns are boundary → 2 * ny.
        assert_eq!(m.boundary_vertices, 8);
        assert_eq!(m.cut_edges, 4);
    }

    #[test]
    fn blocks_partition_paper_grid() {
        // The paper's 16-processor experiment: 17×17 grid on a 4×4 mesh.
        let nx = 17;
        let a = generators::grid2d_laplacian(nx, nx);
        let asg = grid_blocks(nx, nx, 4, 4);
        let m = metrics(&a, &asg);
        assert_eq!(m.sizes.len(), 16);
        assert!(m.sizes.iter().all(|&s| s > 0));
        assert!(m.imbalance < 1.6, "imbalance {}", m.imbalance);
    }

    #[test]
    fn block_ids_follow_row_major_mesh() {
        let asg = grid_blocks(4, 4, 2, 2);
        assert_eq!(asg[0], 0); // (0,0)
        assert_eq!(asg[3], 1); // (3,0) → right block
        assert_eq!(asg[12], 2); // (0,3) → lower-left block
        assert_eq!(asg[15], 3); // (3,3)
    }

    #[test]
    fn greedy_grow_covers_and_balances() {
        let a = generators::grid2d_laplacian(10, 10);
        let asg = greedy_grow(&a, 4, 42);
        assert!(asg.iter().all(|&p| p < 4));
        let m = metrics(&a, &asg);
        assert_eq!(m.sizes.iter().sum::<usize>(), 100);
        assert!(m.sizes.iter().all(|&s| s > 0));
        assert!(m.imbalance < 1.5, "imbalance {}", m.imbalance);
    }

    #[test]
    fn greedy_grow_deterministic_per_seed() {
        let a = generators::grid2d_laplacian(6, 6);
        assert_eq!(greedy_grow(&a, 3, 7), greedy_grow(&a, 3, 7));
    }

    #[test]
    fn greedy_grow_handles_disconnected() {
        // Two disconnected 2-paths; 2 parts must still cover everything.
        let mut coo = dtm_sparse::Coo::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 2.0).unwrap();
        }
        coo.push_sym(0, 1, -1.0).unwrap();
        coo.push_sym(2, 3, -1.0).unwrap();
        let a = coo.to_csr();
        let asg = greedy_grow(&a, 2, 1);
        assert!(asg.iter().all(|&p| p < 2));
    }

    #[test]
    fn recursive_bisection_produces_power_of_two_parts() {
        let a = generators::grid2d_laplacian(8, 8);
        let asg = recursive_bisection(&a, 2);
        let m = metrics(&a, &asg);
        assert_eq!(m.sizes.len(), 4);
        assert_eq!(m.sizes.iter().sum::<usize>(), 64);
        assert!(m.sizes.iter().all(|&s| s >= 8), "sizes {:?}", m.sizes);
    }

    #[test]
    fn metrics_single_part() {
        let a = generators::grid2d_laplacian(3, 3);
        let m = metrics(&a, &[0; 9]);
        assert_eq!(m.boundary_vertices, 0);
        assert_eq!(m.cut_edges, 0);
        assert_eq!(m.sizes, vec![9]);
    }
}

//! The electric graph of a symmetric linear system (paper §3).
//!
//! "It is easy to know that an electric graph is one-to-one mapped to a
//! symmetric linear system" — this module *is* that bijection.

use dtm_sparse::{Csr, Error, Result};

/// An electric graph: a symmetric sparse matrix plus per-vertex sources.
///
/// Terminology (paper §3): for the system `A x = b`,
/// * `a_ii` is the **weight of vertex** `V_i`,
/// * `a_ij (i ≠ j)` is the **weight of edge** `E_ij`,
/// * `b_i` is the **source** of `V_i`,
/// * `x_i` is the **potential** of `V_i` (the unknown).
#[derive(Debug, Clone, PartialEq)]
pub struct ElectricGraph {
    a: Csr,
    b: Vec<f64>,
}

impl ElectricGraph {
    /// Build from a symmetric system.
    ///
    /// # Errors
    /// * [`Error::NotSymmetric`] if `a` is not symmetric within `1e-12`
    ///   relative tolerance;
    /// * [`Error::DimensionMismatch`] if `b` has the wrong length.
    pub fn from_system(a: Csr, b: Vec<f64>) -> Result<Self> {
        a.require_symmetric(1e-12)?;
        if b.len() != a.n_rows() {
            return Err(Error::DimensionMismatch {
                context: "ElectricGraph::from_system",
                expected: a.n_rows(),
                actual: b.len(),
            });
        }
        Ok(Self { a, b })
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.a.n_rows()
    }

    /// The coefficient matrix.
    pub fn matrix(&self) -> &Csr {
        &self.a
    }

    /// The sources (right-hand side).
    pub fn sources(&self) -> &[f64] {
        &self.b
    }

    /// Weight of vertex `i` (`a_ii`).
    pub fn vertex_weight(&self, i: usize) -> f64 {
        self.a.get(i, i)
    }

    /// Weight of edge `(i, j)`; zero means "no edge".
    pub fn edge_weight(&self, i: usize, j: usize) -> f64 {
        if i == j {
            0.0
        } else {
            self.a.get(i, j)
        }
    }

    /// Source of vertex `i` (`b_i`).
    pub fn source(&self, i: usize) -> f64 {
        self.b[i]
    }

    /// Neighbours of vertex `i` with their edge weights (diagonal excluded).
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.a.row(i).filter(move |&(c, _)| c != i)
    }

    /// Degree of vertex `i` (number of incident edges).
    pub fn degree(&self, i: usize) -> usize {
        self.neighbors(i).count()
    }

    /// Total number of (undirected) edges.
    pub fn n_edges(&self) -> usize {
        (self.a.nnz()
            - (0..self.n())
                .filter(|&i| self.vertex_weight(i) != 0.0)
                .count())
            / 2
    }

    /// Recover the linear system (the inverse of [`Self::from_system`]).
    pub fn to_system(&self) -> (Csr, Vec<f64>) {
        (self.a.clone(), self.b.clone())
    }

    /// Consume into the linear system without cloning.
    pub fn into_system(self) -> (Csr, Vec<f64>) {
        (self.a, self.b)
    }

    /// Sum of inflow = `Σ_j a_ij x_j − b_i` at vertex `i` given potentials
    /// `x`: the Kirchhoff residual that EVS's inflow currents account for.
    pub fn kirchhoff_residual(&self, x: &[f64]) -> Vec<f64> {
        let mut r = self.a.matvec(x);
        for (ri, bi) in r.iter_mut().zip(&self.b) {
            *ri -= bi;
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_sparse::generators;

    fn paper_graph() -> ElectricGraph {
        let (a, b) = generators::paper_example_system();
        ElectricGraph::from_system(a, b).unwrap()
    }

    #[test]
    fn example_3_1_weights_match_figure_3() {
        // Fig. 3: vertex weights 5, 6, 7, 8; edges V1V2=−1, V1V3=−1,
        // V2V3=−2, V2V4=−1, V3V4=−2; sources 1, 2, 3, 4.
        let g = paper_graph();
        assert_eq!(g.n(), 4);
        assert_eq!(
            (0..4).map(|i| g.vertex_weight(i)).collect::<Vec<_>>(),
            vec![5.0, 6.0, 7.0, 8.0]
        );
        assert_eq!(g.edge_weight(0, 1), -1.0);
        assert_eq!(g.edge_weight(0, 2), -1.0);
        assert_eq!(g.edge_weight(1, 2), -2.0);
        assert_eq!(g.edge_weight(1, 3), -1.0);
        assert_eq!(g.edge_weight(2, 3), -2.0);
        assert_eq!(g.edge_weight(0, 3), 0.0, "V1 and V4 are not connected");
        assert_eq!(g.sources(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(g.n_edges(), 5);
    }

    #[test]
    fn roundtrip_is_lossless() {
        let (a, b) = generators::paper_example_system();
        let g = ElectricGraph::from_system(a.clone(), b.clone()).unwrap();
        let (a2, b2) = g.to_system();
        assert_eq!(a, a2);
        assert_eq!(b, b2);
    }

    #[test]
    fn asymmetric_matrix_rejected() {
        let mut coo = dtm_sparse::Coo::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        coo.push(0, 1, 0.5).unwrap();
        let err = ElectricGraph::from_system(coo.to_csr(), vec![0.0, 0.0]);
        assert!(matches!(err, Err(Error::NotSymmetric { .. })));
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let (a, _) = generators::paper_example_system();
        let err = ElectricGraph::from_system(a, vec![0.0; 3]);
        assert!(matches!(err, Err(Error::DimensionMismatch { .. })));
    }

    #[test]
    fn neighbors_and_degree() {
        let g = paper_graph();
        let n1: Vec<usize> = g.neighbors(1).map(|(c, _)| c).collect();
        assert_eq!(n1, vec![0, 2, 3]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
    }

    #[test]
    fn kirchhoff_residual_vanishes_at_solution() {
        let g = paper_graph();
        let (a, b) = g.to_system();
        let x = dtm_sparse::DenseCholesky::factor_csr(&a).unwrap().solve(&b);
        let r = g.kirchhoff_residual(&x);
        for v in r {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn potential_self_edge_weight_is_zero() {
        let g = paper_graph();
        assert_eq!(g.edge_weight(2, 2), 0.0);
    }
}

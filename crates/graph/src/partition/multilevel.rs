//! Multilevel k-way partitioning: **coarsen → partition → refine**.
//!
//! Every cut edge is a per-wave `DtmMsg` stream in DTM, so cut size is the
//! direct knob on solve traffic. [`nested_dissection`](super::nested_dissection) bisects the *full*
//! graph greedily; the multilevel scheme instead
//!
//! 1. **coarsens** the graph by repeated heavy-edge matchings (matched
//!    pairs contract into one vertex; parallel edges sum their weights, so
//!    a coarse cut weight equals the fine cut it stands for),
//! 2. runs nested dissection on the small coarsest graph, where greedy
//!    growth sees the whole structure at once, and
//! 3. **uncoarsens** level by level, running boundary-only
//!    Fiduccia–Mattheyses passes that slide the separators into lower-cut
//!    positions under a balance constraint.
//!
//! The entry point [`multilevel`] additionally evaluates the plain and
//! FM-refined nested-dissection assignments as candidates and returns the
//! best feasible one, so its cut is **never worse than
//! [`nested_dissection`](super::nested_dissection)'s, by construction** — the quality floor the
//! proptests pin — while the multilevel candidate supplies the headline
//! wins (≥ 10% fewer cut edges on the 48³ bench grid).
//!
//! Everything is deterministic for a fixed [`PartitionConfig::seed`]: the
//! matching visit order is a seeded shuffle stably sorted by descending
//! edge weight, and every heap carries a pinned vertex-index tie-break.

use super::{nested_dissection_with, PartitionConfig};
use dtm_sparse::{Coo, Csr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BinaryHeap;

/// One level of the coarsening hierarchy: an undirected multigraph with
/// summed edge and vertex weights (level 0 has unit weights everywhere).
#[derive(Debug, Clone)]
pub struct LevelGraph {
    adj_ptr: Vec<usize>,
    /// `(neighbour, summed edge weight)` — no self loops.
    adj: Vec<(usize, u64)>,
    /// Vertex weights (number of original vertices contracted into each).
    vwt: Vec<u64>,
}

impl LevelGraph {
    /// Number of vertices at this level.
    pub fn n(&self) -> usize {
        self.vwt.len()
    }

    /// Neighbour slice of `v`.
    fn neighbors(&self, v: usize) -> &[(usize, u64)] {
        &self.adj[self.adj_ptr[v]..self.adj_ptr[v + 1]]
    }

    /// Total vertex weight (invariant across levels: the original n).
    pub fn total_weight(&self) -> u64 {
        self.vwt.iter().sum()
    }

    /// Build the unit-weight level-0 multigraph from a matrix pattern.
    pub fn from_csr(a: &Csr) -> Self {
        let n = a.n_rows();
        let mut adj_ptr = vec![0usize; n + 1];
        for u in 0..n {
            adj_ptr[u + 1] = a.row(u).filter(|&(c, _)| c != u).count();
        }
        for u in 0..n {
            adj_ptr[u + 1] += adj_ptr[u];
        }
        let mut adj = Vec::with_capacity(adj_ptr[n]);
        for u in 0..n {
            adj.extend(a.row(u).filter(|&(c, _)| c != u).map(|(c, _)| (c, 1u64)));
        }
        Self {
            adj_ptr,
            adj,
            vwt: vec![1; n],
        }
    }

    /// Weighted cut of an assignment — equals the number of *original*
    /// graph edges crossing parts, at any level of the hierarchy.
    pub fn cut_weight(&self, assignment: &[usize]) -> u64 {
        let mut cut = 0;
        for v in 0..self.n() {
            for &(u, w) in self.neighbors(v) {
                if u > v && assignment[u] != assignment[v] {
                    cut += w;
                }
            }
        }
        cut
    }

    /// Pattern-only CSR view (for running [`nested_dissection_with`] on a
    /// coarse level; the dissection never reads values).
    pub fn to_csr(&self) -> Csr {
        let n = self.n();
        let mut coo = Coo::with_capacity(n, n, self.adj.len() + n);
        for v in 0..n {
            // Both endpoints are level vertices, so the pushes are always
            // in bounds; a corrupt adjacency drops the entry rather than
            // aborting the partitioner.
            let diag = coo.push(v, v, 1.0);
            debug_assert!(diag.is_ok(), "diagonal in bounds");
            for &(u, w) in self.neighbors(v) {
                let off = coo.push(v, u, -(w as f64));
                debug_assert!(off.is_ok(), "neighbor in bounds");
            }
        }
        coo.to_csr()
    }
}

/// The coarsening hierarchy: `levels[0]` is the original graph, `maps[i]`
/// sends level-`i` vertices to their level-`i+1` contraction.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    levels: Vec<LevelGraph>,
    maps: Vec<Vec<usize>>,
}

impl Hierarchy {
    /// The original (finest) graph.
    pub fn finest(&self) -> &LevelGraph {
        &self.levels[0]
    }

    /// The coarsest graph.
    pub fn coarsest(&self) -> &LevelGraph {
        // Construction always seeds `levels[0]`; fall back to the finest
        // graph rather than aborting if that invariant is ever broken.
        self.levels.last().unwrap_or(&self.levels[0])
    }

    /// Number of levels (≥ 1; 1 means no coarsening happened).
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Pattern-only CSR of the coarsest graph (initial-partition input).
    pub fn coarsest_csr(&self) -> Csr {
        self.coarsest().to_csr()
    }
}

/// Phase 1 — build the hierarchy by repeated heavy-edge matchings until
/// the graph has at most `coarsen_threshold · k` vertices or a matching
/// stops shrinking it (ratio > 0.95: long chains of unmatchable vertices).
pub fn coarsen(a: &Csr, k: usize, config: &PartitionConfig) -> Hierarchy {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let stop = config.coarsen_threshold.max(1).saturating_mul(k);
    let mut levels = vec![LevelGraph::from_csr(a)];
    let mut maps = Vec::new();
    while let Some(g) = levels.last() {
        if g.n() <= stop {
            break;
        }
        let (map, n_coarse) = heavy_edge_matching(g, &mut rng);
        if n_coarse * 20 > g.n() * 19 {
            break; // shrinkage stalled
        }
        let coarse = contract(g, &map, n_coarse);
        maps.push(map);
        levels.push(coarse);
    }
    Hierarchy { levels, maps }
}

/// One randomized-greedy maximal matching, heaviest incident edges first:
/// vertices are visited in descending order of their heaviest incident
/// edge (ties shuffled by the seeded RNG), and each unmatched vertex pairs
/// with the unmatched neighbour behind its heaviest edge (ties: lighter
/// vertex weight, then lower index — contracting light vertices keeps
/// coarse weights even). Returns the fine→coarse map and the coarse count.
fn heavy_edge_matching(g: &LevelGraph, rng: &mut StdRng) -> (Vec<usize>, usize) {
    let n = g.n();
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let heaviest: Vec<u64> = (0..n)
        .map(|v| g.neighbors(v).iter().map(|&(_, w)| w).max().unwrap_or(0))
        .collect();
    // Stable sort keeps the shuffled order within each weight class.
    order.sort_by_key(|&v| std::cmp::Reverse(heaviest[v]));

    let mut mate = vec![usize::MAX; n];
    for &u in &order {
        if mate[u] != usize::MAX {
            continue;
        }
        let mut best: Option<(u64, std::cmp::Reverse<u64>, std::cmp::Reverse<usize>)> = None;
        let mut best_v = u;
        for &(v, w) in g.neighbors(u) {
            if mate[v] != usize::MAX {
                continue;
            }
            let key = (w, std::cmp::Reverse(g.vwt[v]), std::cmp::Reverse(v));
            if Some(key) > best {
                best = Some(key);
                best_v = v;
            }
        }
        mate[u] = best_v;
        mate[best_v] = u; // self-mate when unmatched
    }
    let mut map = vec![usize::MAX; n];
    let mut next = 0usize;
    for u in 0..n {
        if map[u] != usize::MAX {
            continue;
        }
        map[u] = next;
        map[mate[u]] = next; // no-op for self-mates
        next += 1;
    }
    (map, next)
}

/// Contract a matching: coarse vertex weights sum their members', parallel
/// edges between coarse vertices sum their weights, internal edges vanish.
fn contract(g: &LevelGraph, map: &[usize], n_coarse: usize) -> LevelGraph {
    let n = g.n();
    let mut vwt = vec![0u64; n_coarse];
    for v in 0..n {
        vwt[map[v]] += g.vwt[v];
    }
    // Members of each coarse vertex, CSR-style, in fine-index order.
    let mut member_ptr = vec![0usize; n_coarse + 1];
    for v in 0..n {
        member_ptr[map[v] + 1] += 1;
    }
    for c in 0..n_coarse {
        member_ptr[c + 1] += member_ptr[c];
    }
    let mut members = vec![0usize; n];
    let mut fill = member_ptr.clone();
    for v in 0..n {
        members[fill[map[v]]] = v;
        fill[map[v]] += 1;
    }
    // Two marker-array passes: count distinct coarse neighbours, then fill
    // with summed weights (neighbour order = first-seen, deterministic).
    let mut adj_ptr = vec![0usize; n_coarse + 1];
    let mut mark = vec![usize::MAX; n_coarse];
    for c in 0..n_coarse {
        for &v in &members[member_ptr[c]..member_ptr[c + 1]] {
            for &(u, _) in g.neighbors(v) {
                let cu = map[u];
                if cu != c && mark[cu] != c {
                    mark[cu] = c;
                    adj_ptr[c + 1] += 1;
                }
            }
        }
    }
    for c in 0..n_coarse {
        adj_ptr[c + 1] += adj_ptr[c];
    }
    let mut adj = vec![(0usize, 0u64); adj_ptr[n_coarse]];
    let mut mark = vec![usize::MAX; n_coarse];
    let mut slot = vec![0usize; n_coarse];
    let mut fill = adj_ptr.clone();
    for c in 0..n_coarse {
        for &v in &members[member_ptr[c]..member_ptr[c + 1]] {
            for &(u, w) in g.neighbors(v) {
                let cu = map[u];
                if cu == c {
                    continue;
                }
                if mark[cu] != c {
                    mark[cu] = c;
                    slot[cu] = fill[c];
                    adj[fill[c]] = (cu, w);
                    fill[c] += 1;
                } else {
                    adj[slot[cu]].1 += w;
                }
            }
        }
    }
    LevelGraph { adj_ptr, adj, vwt }
}

/// Scratch for per-vertex gain evaluation: edge weight towards each part.
struct GainScratch {
    weight_to: Vec<i64>,
    touched: Vec<usize>,
}

impl GainScratch {
    fn new(k: usize) -> Self {
        Self {
            weight_to: vec![0; k],
            touched: Vec::with_capacity(8),
        }
    }
}

/// Best move of `v` under the balance constraint: the foreign adjacent
/// part of maximum gain (edge weight gained minus edge weight lost) whose
/// weight stays ≤ `wmax` after the move and leaves ≥ `wmin` behind. Ties
/// break to the smaller part id. `None` when `v` is interior or no move
/// fits the balance window.
#[allow(clippy::too_many_arguments)]
fn best_feasible_move(
    g: &LevelGraph,
    assignment: &[usize],
    v: usize,
    part_weight: &[u64],
    wmax: u64,
    wmin: u64,
    scratch: &mut GainScratch,
) -> Option<(i64, usize)> {
    let pv = assignment[v];
    let wv = g.vwt[v];
    if part_weight[pv] < wmin.saturating_add(wv) {
        return None; // the move would drain the source part
    }
    for &(u, w) in g.neighbors(v) {
        let pu = assignment[u];
        if scratch.weight_to[pu] == 0 {
            scratch.touched.push(pu);
        }
        scratch.weight_to[pu] += w as i64;
    }
    let internal = scratch.weight_to[pv];
    let mut best: Option<(i64, usize)> = None;
    for &p in &scratch.touched {
        if p == pv || part_weight[p] + wv > wmax {
            continue;
        }
        let gain = scratch.weight_to[p] - internal;
        let better = match best {
            None => true,
            Some((bg, bp)) => gain > bg || (gain == bg && p < bp),
        };
        if better {
            best = Some((gain, p));
        }
    }
    for &p in &scratch.touched {
        scratch.weight_to[p] = 0;
    }
    scratch.touched.clear();
    best
}

/// Move `v` out of overweight parts until every part fits under `wmax`
/// (best effort; finer levels have finer-grained weights and finish the
/// job). Unlike the FM pass this accepts cut-increasing moves — balance
/// repair comes first — and never rolls back.
fn rebalance(
    g: &LevelGraph,
    assignment: &mut [usize],
    part_weight: &mut [u64],
    wmax: u64,
    scratch: &mut GainScratch,
) {
    let n = g.n();
    for _round in 0..8 {
        if part_weight.iter().all(|&w| w <= wmax) {
            return;
        }
        // (gain, −v, source, target): max-heap prefers the cheapest repair.
        let mut heap: BinaryHeap<(i64, i64, usize, usize)> = BinaryHeap::new();
        for v in 0..n {
            let pv = assignment[v];
            if part_weight[pv] <= wmax {
                continue;
            }
            // wmin = 1: repair may shrink below the slack floor, never to 0.
            if let Some((gain, t)) =
                best_feasible_move(g, assignment, v, part_weight, wmax, 1, scratch)
            {
                heap.push((gain, -(v as i64), pv, t));
            }
        }
        let mut progress = false;
        while let Some((_, negv, src, target)) = heap.pop() {
            let v = (-negv) as usize;
            // Stale: the vertex moved, its source is already fixed, or the
            // target filled up since the entry was pushed.
            if assignment[v] != src
                || part_weight[src] <= wmax
                || part_weight[target] + g.vwt[v] > wmax
                || part_weight[src] < 1 + g.vwt[v]
            {
                continue;
            }
            assignment[v] = target;
            part_weight[src] -= g.vwt[v];
            part_weight[target] += g.vwt[v];
            progress = true;
        }
        if !progress {
            return; // no feasible repair move at this granularity
        }
    }
}

/// One boundary-only FM pass: repeatedly apply the best
/// balance-feasible move (each vertex at most once), tracking the best
/// cut seen; afterwards roll back to that best prefix. Returns the cut
/// improvement (≤ 0 means the pass found nothing and was fully undone).
fn fm_pass(
    g: &LevelGraph,
    assignment: &mut [usize],
    part_weight: &mut [u64],
    wmax: u64,
    wmin: u64,
    scratch: &mut GainScratch,
) -> i64 {
    let n = g.n();
    let mut moved = vec![false; n];
    let mut version = vec![0u32; n];
    // (gain, −v, target, version): deterministic total order — equal-key
    // entries only ever belong to one vertex, and stale versions drop.
    let mut heap: BinaryHeap<(i64, i64, usize, u32)> = BinaryHeap::new();
    for v in 0..n {
        let pv = assignment[v];
        if g.neighbors(v).iter().all(|&(u, _)| assignment[u] == pv) {
            continue; // boundary-only seeding
        }
        if let Some((gain, t)) =
            best_feasible_move(g, assignment, v, part_weight, wmax, wmin, scratch)
        {
            version[v] = 1;
            heap.push((gain, -(v as i64), t, 1));
        }
    }
    let mut moves: Vec<(usize, usize, usize)> = Vec::new();
    let mut cum = 0i64;
    let mut best_cum = 0i64;
    let mut best_len = 0usize;
    while let Some((gain, negv, target, ver)) = heap.pop() {
        let v = (-negv) as usize;
        if moved[v] || ver != version[v] {
            continue;
        }
        // Re-derive the current best feasible move: part weights and
        // neighbour parts may have shifted since the entry was pushed.
        let Some((cur_gain, cur_target)) =
            best_feasible_move(g, assignment, v, part_weight, wmax, wmin, scratch)
        else {
            continue;
        };
        if (cur_gain, cur_target) != (gain, target) {
            version[v] += 1;
            heap.push((cur_gain, negv, cur_target, version[v]));
            continue;
        }
        let src = assignment[v];
        assignment[v] = target;
        part_weight[src] -= g.vwt[v];
        part_weight[target] += g.vwt[v];
        moved[v] = true;
        cum += gain;
        moves.push((v, src, target));
        if cum > best_cum {
            best_cum = cum;
            best_len = moves.len();
        }
        for &(u, _) in g.neighbors(v) {
            if moved[u] {
                continue;
            }
            version[u] += 1;
            if let Some((ug, ut)) =
                best_feasible_move(g, assignment, u, part_weight, wmax, wmin, scratch)
            {
                heap.push((ug, -(u as i64), ut, version[u]));
            }
        }
    }
    // Keep only the best prefix (hill-climbing: negative-gain moves stay
    // exactly when a later move more than repaid them).
    for &(v, src, target) in moves[best_len..].iter().rev() {
        assignment[v] = src;
        part_weight[target] -= g.vwt[v];
        part_weight[src] += g.vwt[v];
    }
    best_cum
}

/// Balance repair + FM passes on one level (boundary-only; passes stop as
/// soon as one finds no improving prefix).
fn refine_level(g: &LevelGraph, assignment: &mut [usize], k: usize, config: &PartitionConfig) {
    let total = g.total_weight();
    let wmax = config.max_part_weight(total, k);
    let wmin = config.min_part_weight(total, k);
    let mut part_weight = vec![0u64; k];
    for v in 0..g.n() {
        part_weight[assignment[v]] += g.vwt[v];
    }
    let mut scratch = GainScratch::new(k);
    rebalance(g, assignment, &mut part_weight, wmax, &mut scratch);
    for _ in 0..config.fm_passes {
        if fm_pass(g, assignment, &mut part_weight, wmax, wmin, &mut scratch) <= 0 {
            break;
        }
    }
}

/// Phase 3 — project the coarsest assignment down the hierarchy, running
/// [balance repair + FM refinement](refine_assignment) at every level
/// (including the coarsest, before the first projection).
pub fn uncoarsen_refine(
    hierarchy: &Hierarchy,
    mut assignment: Vec<usize>,
    k: usize,
    config: &PartitionConfig,
) -> Vec<usize> {
    assert_eq!(
        assignment.len(),
        hierarchy.coarsest().n(),
        "initial assignment must cover the coarsest level"
    );
    refine_level(hierarchy.coarsest(), &mut assignment, k, config);
    for i in (0..hierarchy.maps.len()).rev() {
        let map = &hierarchy.maps[i];
        let fine = &hierarchy.levels[i];
        let mut fine_assignment = vec![0usize; fine.n()];
        for v in 0..fine.n() {
            fine_assignment[v] = assignment[map[v]];
        }
        assignment = fine_assignment;
        refine_level(fine, &mut assignment, k, config);
    }
    assignment
}

/// Run balance repair + boundary FM refinement directly on a flat graph —
/// the single-level view of the uncoarsening refinement, used on the
/// nested-dissection candidate inside [`multilevel`] and exposed for
/// tests/benches. Never increases the cut (FM rolls back non-improving
/// prefixes) except where balance repair demands it, and never moves a
/// part above `max(initial weight, max_part_weight)`.
pub fn refine_assignment(a: &Csr, assignment: &mut [usize], k: usize, config: &PartitionConfig) {
    let g = LevelGraph::from_csr(a);
    refine_level(&g, assignment, k, config);
}

/// Multilevel k-way partition of a general graph — see the module docs.
///
/// Deterministic per [`PartitionConfig::seed`]; the returned cut is never
/// worse than [`nested_dissection_with`]'s under the same config, and the
/// part sizes respect `max(`[`PartitionConfig::max_part_weight`]`,`
/// nested dissection's own largest part`)`.
///
/// # Panics
/// Panics if `k == 0` or `k > n`.
pub fn multilevel(a: &Csr, k: usize, config: &PartitionConfig) -> Vec<usize> {
    let n = a.n_rows();
    assert!(k >= 1 && k <= n.max(1), "need 1 ≤ k ≤ n");
    if k == 1 {
        return vec![0; n];
    }
    let hierarchy = coarsen(a, k, config);
    let initial = nested_dissection_with(&hierarchy.coarsest_csr(), k, config);
    let ml = uncoarsen_refine(&hierarchy, initial, k, config);

    // Quality floor: the dissection of the full graph, raw and FM-refined,
    // compete with the multilevel result. nd itself is always feasible, so
    // the winner's cut is ≤ nd's and its balance is ≤ max(slack, nd's).
    let nd = nested_dissection_with(a, k, config);
    let mut nd_refined = nd.clone();
    let g0 = hierarchy.finest();
    refine_level(g0, &mut nd_refined, k, config);

    let max_size = |asg: &[usize]| {
        let mut sizes = vec![0u64; k];
        for &p in asg {
            sizes[p] += 1;
        }
        sizes.into_iter().max().unwrap_or(0)
    };
    let nd_cut = g0.cut_weight(&nd);
    let bound = config.max_part_weight(n as u64, k).max(max_size(&nd));
    // The raw nd candidate always passes the filter (cut == nd_cut and
    // size ≤ bound by construction), so the fallback only fires if that
    // invariant breaks — and then nd is still a valid partition.
    let fallback = nd.clone();
    [ml, nd_refined, nd]
        .into_iter()
        .map(|asg| {
            let cut = g0.cut_weight(&asg);
            let size = max_size(&asg);
            (asg, cut, size)
        })
        .filter(|&(_, cut, size)| cut <= nd_cut && size <= bound)
        .min_by_key(|&(_, cut, size)| (cut, size))
        .map(|(asg, _, _)| asg)
        .unwrap_or(fallback)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{metrics, nested_dissection};
    use dtm_sparse::generators;

    fn cfg() -> PartitionConfig {
        PartitionConfig::default()
    }

    #[test]
    fn level0_graph_mirrors_matrix_pattern() {
        let a = generators::grid2d_laplacian(4, 3);
        let g = LevelGraph::from_csr(&a);
        assert_eq!(g.n(), 12);
        assert_eq!(g.total_weight(), 12);
        // Corner vertex 0 has 2 neighbours; interior vertex 5 has 4.
        assert_eq!(g.neighbors(0).len(), 2);
        assert_eq!(g.neighbors(5).len(), 4);
        assert!(g.adj.iter().all(|&(_, w)| w == 1));
    }

    #[test]
    fn coarsening_shrinks_and_conserves_weight() {
        let a = generators::grid3d_laplacian(8, 8, 8);
        let h = coarsen(&a, 2, &cfg());
        assert!(h.n_levels() >= 2, "512 vertices must coarsen below 200");
        for level in &h.levels {
            assert_eq!(level.total_weight(), 512);
        }
        assert!(h.coarsest().n() <= 200);
        assert!(h.coarsest().n() >= 2);
        // Maps compose to a full cover of the fine vertices.
        for (i, map) in h.maps.iter().enumerate() {
            assert_eq!(map.len(), h.levels[i].n());
            assert!(map.iter().all(|&c| c < h.levels[i + 1].n()));
        }
    }

    #[test]
    fn contraction_preserves_cut_weight() {
        // Any coarse assignment, expanded to the fine level, cuts exactly
        // its coarse cut weight — the invariant FM relies on.
        let a = generators::grid2d_laplacian(10, 10);
        let h = coarsen(
            &a,
            2,
            &PartitionConfig {
                coarsen_threshold: 10,
                ..cfg()
            },
        );
        assert!(h.n_levels() >= 3);
        let coarse = h.coarsest();
        let coarse_asg: Vec<usize> = (0..coarse.n()).map(|v| v % 2).collect();
        // Expand down without refinement.
        let mut asg = coarse_asg.clone();
        for i in (0..h.maps.len()).rev() {
            let map = &h.maps[i];
            asg = (0..h.levels[i].n()).map(|v| asg[map[v]]).collect();
        }
        assert_eq!(
            coarse.cut_weight(&coarse_asg),
            h.finest().cut_weight(&asg),
            "summed multigraph weights must equal fine cut edges"
        );
    }

    #[test]
    fn multilevel_covers_balances_and_beats_nd() {
        for &(nx, ny, nz, k) in &[(8, 8, 8, 4usize), (12, 12, 12, 8), (16, 16, 1, 4)] {
            let a = generators::grid3d_laplacian(nx, ny, nz);
            let n = nx * ny * nz;
            let ml = multilevel(&a, k, &cfg());
            let m = metrics(&a, &ml);
            assert_eq!(m.sizes.len(), k);
            assert_eq!(m.sizes.iter().sum::<usize>(), n);
            assert!(m.sizes.iter().all(|&s| s > 0));
            let nd = metrics(&a, &nested_dissection(&a, k));
            assert!(
                m.cut_edges <= nd.cut_edges,
                "{nx}×{ny}×{nz} k={k}: ml cut {} > nd cut {}",
                m.cut_edges,
                nd.cut_edges
            );
            let bound = cfg().max_part_weight(n as u64, k).max(
                *metrics(&a, &nested_dissection(&a, k))
                    .sizes
                    .iter()
                    .max()
                    .unwrap() as u64,
            );
            assert!(
                m.sizes.iter().all(|&s| (s as u64) <= bound),
                "{nx}×{ny}×{nz} k={k}: sizes {:?} exceed bound {bound}",
                m.sizes
            );
        }
    }

    #[test]
    fn multilevel_is_deterministic() {
        let a = generators::grid3d_laplacian(9, 9, 9);
        assert_eq!(multilevel(&a, 6, &cfg()), multilevel(&a, 6, &cfg()));
        // And seed-sensitive runs stay internally deterministic too.
        let seeded = PartitionConfig { seed: 77, ..cfg() };
        assert_eq!(multilevel(&a, 6, &seeded), multilevel(&a, 6, &seeded));
    }

    #[test]
    fn multilevel_single_part_and_tiny_graphs() {
        let a = generators::grid2d_laplacian(3, 3);
        assert_eq!(multilevel(&a, 1, &cfg()), vec![0; 9]);
        let ml = multilevel(&a, 9, &cfg());
        let m = metrics(&a, &ml);
        assert_eq!(m.sizes, vec![1; 9]);
    }

    #[test]
    fn multilevel_handles_disconnected_graphs() {
        let mut coo = dtm_sparse::Coo::new(8, 8);
        for i in 0..8 {
            coo.push(i, i, 2.0).unwrap();
        }
        coo.push_sym(0, 1, -1.0).unwrap();
        coo.push_sym(2, 3, -1.0).unwrap();
        coo.push_sym(4, 5, -1.0).unwrap();
        coo.push_sym(6, 7, -1.0).unwrap();
        let a = coo.to_csr();
        let asg = multilevel(&a, 3, &cfg());
        let m = metrics(&a, &asg);
        assert_eq!(m.sizes.len(), 3);
        assert!(m.sizes.iter().all(|&s| s > 0));
    }

    #[test]
    fn refinement_never_worsens_a_balanced_partition() {
        let a = generators::grid2d_laplacian(16, 16);
        let mut asg = nested_dissection(&a, 4);
        let before = metrics(&a, &asg);
        refine_assignment(&a, &mut asg, 4, &cfg());
        let after = metrics(&a, &asg);
        assert!(after.cut_edges <= before.cut_edges);
        assert_eq!(after.sizes.iter().sum::<usize>(), 256);
        assert!(after.sizes.iter().all(|&s| s > 0));
    }

    #[test]
    fn rebalance_pulls_overweight_parts_under_the_cap() {
        // A deliberately lopsided strip split: part 0 holds 3/4 of the
        // vertices. Refinement must land inside the balance window.
        let a = generators::grid2d_laplacian(16, 8);
        let mut asg: Vec<usize> = (0..128).map(|v| usize::from(v % 16 >= 12)).collect();
        refine_assignment(&a, &mut asg, 2, &cfg());
        let m = metrics(&a, &asg);
        let wmax = cfg().max_part_weight(128, 2);
        assert!(
            m.sizes.iter().all(|&s| (s as u64) <= wmax),
            "sizes {:?} vs cap {wmax}",
            m.sizes
        );
    }
}

//! Partition plans: which vertices are inner to which part, which are split.
//!
//! EVS step 1 ("set the splitting boundary") and step 2 ("split each
//! boundary vertex") are captured declaratively by a [`PartitionPlan`]. A
//! plan is most conveniently *derived* from a raw per-vertex assignment with
//! [`PartitionPlan::from_assignment`]: every vertex with a neighbour in a
//! foreign part becomes a boundary vertex, replicated into each part its
//! neighbourhood touches — exactly the paper's wire-tearing of Example 4.1.

use crate::electric::ElectricGraph;
use dtm_sparse::{Error, Result};

/// Role of a vertex in the partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Owner {
    /// Inner vertex of a single part.
    Inner(usize),
    /// Boundary vertex split into one copy per listed part
    /// (sorted, distinct, ≥ 2 parts).
    Split(Vec<usize>),
}

impl Owner {
    /// Parts this vertex participates in.
    pub fn parts(&self) -> &[usize] {
        match self {
            Owner::Inner(p) => std::slice::from_ref(p),
            Owner::Split(ps) => ps,
        }
    }

    /// Is this a split (boundary) vertex?
    pub fn is_split(&self) -> bool {
        matches!(self, Owner::Split(_))
    }
}

/// A validated EVS partition plan for a specific electric graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    n_parts: usize,
    owner: Vec<Owner>,
}

impl PartitionPlan {
    /// Build a plan from explicit owners, validating against the graph:
    ///
    /// * part indices are `< n_parts` and every part is non-empty,
    /// * split lists are sorted, distinct, length ≥ 2,
    /// * no edge connects inner vertices of different parts,
    /// * every edge can be placed: an `Inner(p)`–`Split` edge requires `p`
    ///   among the split's parts; a `Split`–`Split` edge requires a common
    ///   part.
    pub fn new(graph: &ElectricGraph, n_parts: usize, owner: Vec<Owner>) -> Result<Self> {
        if owner.len() != graph.n() {
            return Err(Error::DimensionMismatch {
                context: "PartitionPlan::new",
                expected: graph.n(),
                actual: owner.len(),
            });
        }
        let mut seen = vec![false; n_parts];
        for (v, o) in owner.iter().enumerate() {
            match o {
                Owner::Inner(p) => {
                    if *p >= n_parts {
                        return Err(Error::IndexOutOfBounds {
                            context: "PartitionPlan part id",
                            index: *p,
                            bound: n_parts,
                        });
                    }
                    seen[*p] = true;
                }
                Owner::Split(ps) => {
                    if ps.len() < 2 {
                        return Err(Error::Parse(format!(
                            "split vertex {v} must span ≥ 2 parts, got {ps:?}"
                        )));
                    }
                    if !ps.windows(2).all(|w| w[0] < w[1]) {
                        return Err(Error::Parse(format!(
                            "split parts of vertex {v} must be sorted and distinct: {ps:?}"
                        )));
                    }
                    for &p in ps {
                        if p >= n_parts {
                            return Err(Error::IndexOutOfBounds {
                                context: "PartitionPlan part id",
                                index: p,
                                bound: n_parts,
                            });
                        }
                        seen[p] = true;
                    }
                }
            }
        }
        if let Some(p) = seen.iter().position(|s| !s) {
            return Err(Error::Parse(format!("part {p} is empty")));
        }
        // Edge placement feasibility.
        for u in 0..graph.n() {
            for (v, _) in graph.neighbors(u) {
                if v < u {
                    continue;
                }
                match (&owner[u], &owner[v]) {
                    (Owner::Inner(p), Owner::Inner(q)) if p != q => {
                        return Err(Error::Parse(format!(
                            "edge ({u}, {v}) connects inner vertices of parts {p} and {q}; \
                             at least one endpoint must be split"
                        )));
                    }
                    (Owner::Inner(p), Owner::Split(qs)) | (Owner::Split(qs), Owner::Inner(p))
                        if !qs.contains(p) =>
                    {
                        return Err(Error::Parse(format!(
                            "edge ({u}, {v}): split endpoint lacks a copy in part {p}"
                        )));
                    }
                    (Owner::Split(ps), Owner::Split(qs)) if common_parts(ps, qs).is_empty() => {
                        return Err(Error::Parse(format!(
                            "edge ({u}, {v}): split endpoints share no part \
                                 ({ps:?} vs {qs:?})"
                        )));
                    }
                    _ => {}
                }
            }
        }
        Ok(Self { n_parts, owner })
    }

    /// Derive a plan from a raw per-vertex part assignment, choosing the
    /// splitting boundary `G_B` as a small **vertex cover of the cut
    /// edges** (greedy highest-coverage-first). Each boundary vertex is
    /// split into its own part plus the parts of all its neighbours —
    /// reproducing the paper's wire tearing: for Example 4.1's assignment
    /// `{V1,V2 → 0, V3,V4 → 1}` the derived boundary is exactly `{V2, V3}`
    /// and V1/V4 stay inner. Always yields a valid plan.
    pub fn from_assignment(graph: &ElectricGraph, assignment: &[usize]) -> Result<Self> {
        if assignment.len() != graph.n() {
            return Err(Error::DimensionMismatch {
                context: "PartitionPlan::from_assignment",
                expected: graph.n(),
                actual: assignment.len(),
            });
        }
        let n = graph.n();
        let n_parts = match assignment.iter().max() {
            Some(&m) => m + 1,
            None => 0,
        };

        // Cut edges (u < v) and per-vertex cut degrees.
        let mut cut_edges: Vec<(usize, usize)> = Vec::new();
        let mut cut_degree = vec![0usize; n];
        for u in 0..n {
            for (v, _) in graph.neighbors(u) {
                if v > u && assignment[u] != assignment[v] {
                    cut_edges.push((u, v));
                    cut_degree[u] += 1;
                    cut_degree[v] += 1;
                }
            }
        }

        // Greedy cover: repeatedly split the vertex covering the most
        // still-uncovered cut edges; ties broken by total cut degree then
        // by *higher* index (so strip cuts take one consistent side).
        //
        // Selection order is `max((live_degree[v], cut_degree[v], v))` over
        // endpoints of still-uncovered edges — the key is unique (the `v`
        // component breaks every tie), so a lazy-deletion max-heap picks the
        // exact same vertex sequence as a full rescan while dropping the
        // cost from O(boundary × cut²) to O(cut · log cut).
        let mut in_boundary = vec![false; n];
        let mut live_degree = cut_degree.clone();

        // CSR-style adjacency over cut edges: incident edge ids per vertex.
        let mut adj_ptr = vec![0usize; n + 1];
        for &(u, v) in &cut_edges {
            adj_ptr[u + 1] += 1;
            adj_ptr[v + 1] += 1;
        }
        for i in 0..n {
            adj_ptr[i + 1] += adj_ptr[i];
        }
        let mut adj: Vec<(usize, usize)> = vec![(0, 0); adj_ptr[n]];
        let mut fill = adj_ptr.clone();
        for (e, &(u, v)) in cut_edges.iter().enumerate() {
            adj[fill[u]] = (v, e);
            fill[u] += 1;
            adj[fill[v]] = (u, e);
            fill[v] += 1;
        }

        let mut covered = vec![false; cut_edges.len()];
        let mut remaining = cut_edges.len();
        let mut heap: std::collections::BinaryHeap<(usize, usize, usize)> = (0..n)
            .filter(|&v| cut_degree[v] > 0)
            .map(|v| (cut_degree[v], cut_degree[v], v))
            .collect();
        while remaining > 0 {
            // Uncovered edges imply live vertices in the heap; stop the
            // cover greedily if that invariant is ever broken.
            let Some((live, _, best)) = heap.pop() else {
                break;
            };
            // Stale entry: vertex already chosen, or its live degree has
            // shrunk since this entry was pushed (a fresher one exists).
            if in_boundary[best] || live != live_degree[best] || live == 0 {
                continue;
            }
            in_boundary[best] = true;
            for &(other, e) in &adj[adj_ptr[best]..adj_ptr[best + 1]] {
                if covered[e] {
                    continue;
                }
                covered[e] = true;
                remaining -= 1;
                live_degree[best] -= 1;
                live_degree[other] -= 1;
                if !in_boundary[other] && live_degree[other] > 0 {
                    heap.push((live_degree[other], cut_degree[other], other));
                }
            }
        }

        let mut owner = Vec::with_capacity(n);
        for v in 0..n {
            if !in_boundary[v] {
                owner.push(Owner::Inner(assignment[v]));
                continue;
            }
            let mut parts: Vec<usize> = std::iter::once(assignment[v])
                .chain(graph.neighbors(v).map(|(u, _)| assignment[u]))
                .collect();
            parts.sort_unstable();
            parts.dedup();
            debug_assert!(parts.len() >= 2, "boundary vertex has a foreign neighbour");
            owner.push(Owner::Split(parts));
        }
        Self::new(graph, n_parts, owner)
    }

    /// Derive a plan by running the named [`Partitioner`](crate::partition::Partitioner) on the graph's
    /// matrix pattern under `config` — the one-call path from an electric
    /// graph to a validated EVS plan.
    pub fn from_partitioner(
        graph: &ElectricGraph,
        partitioner: crate::partition::Partitioner,
        n_parts: usize,
        config: &crate::partition::PartitionConfig,
    ) -> Result<Self> {
        let assignment = partitioner.assign(graph.matrix(), n_parts, config);
        Self::from_assignment(graph, &assignment)
    }

    /// Number of parts.
    pub fn n_parts(&self) -> usize {
        self.n_parts
    }

    /// Owner of vertex `v`.
    pub fn owner(&self, v: usize) -> &Owner {
        &self.owner[v]
    }

    /// All owners.
    pub fn owners(&self) -> &[Owner] {
        &self.owner
    }

    /// Indices of split (boundary) vertices.
    pub fn split_vertices(&self) -> impl Iterator<Item = usize> + '_ {
        self.owner
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_split())
            .map(|(v, _)| v)
    }

    /// Number of split vertices.
    pub fn n_split(&self) -> usize {
        self.split_vertices().count()
    }

    /// Parts an edge `(u, v)` may be placed in (assumes the plan is valid
    /// for the graph it was built against).
    pub fn edge_parts(&self, u: usize, v: usize) -> Vec<usize> {
        match (&self.owner[u], &self.owner[v]) {
            (Owner::Inner(p), Owner::Inner(q)) => {
                debug_assert_eq!(p, q, "validated plans have no cross-inner edges");
                vec![*p]
            }
            (Owner::Inner(p), Owner::Split(_)) | (Owner::Split(_), Owner::Inner(p)) => vec![*p],
            (Owner::Split(ps), Owner::Split(qs)) => common_parts(ps, qs),
        }
    }
}

/// Sorted intersection of two sorted part lists.
pub(crate) fn common_parts(a: &[usize], b: &[usize]) -> Vec<usize> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_sparse::generators;

    fn paper_graph() -> ElectricGraph {
        let (a, b) = generators::paper_example_system();
        ElectricGraph::from_system(a, b).unwrap()
    }

    #[test]
    fn example_4_1_plan_from_assignment() {
        // Assign V1, V2 → part 0 and V3, V4 → part 1. The derived plan must
        // split exactly V2 and V3 (the paper's boundary G_B = {V2, V3}).
        let g = paper_graph();
        let plan = PartitionPlan::from_assignment(&g, &[0, 0, 1, 1]).unwrap();
        assert_eq!(plan.n_parts(), 2);
        assert_eq!(plan.owner(0), &Owner::Inner(0));
        assert_eq!(plan.owner(1), &Owner::Split(vec![0, 1]));
        assert_eq!(plan.owner(2), &Owner::Split(vec![0, 1]));
        assert_eq!(plan.owner(3), &Owner::Inner(1));
        assert_eq!(plan.n_split(), 2);
    }

    #[test]
    fn cross_inner_edge_rejected() {
        let g = paper_graph();
        let owner = vec![
            Owner::Inner(0),
            Owner::Inner(1), // V1–V2 edge now crosses inner parts
            Owner::Split(vec![0, 1]),
            Owner::Inner(1),
        ];
        assert!(PartitionPlan::new(&g, 2, owner).is_err());
    }

    #[test]
    fn split_missing_part_rejected() {
        let g = paper_graph();
        // V3 split {0,1} is fine, but V2 inner(0) has neighbour V4 inner(1):
        // invalid because the V2–V4 edge crosses.
        let owner = vec![
            Owner::Inner(0),
            Owner::Inner(0),
            Owner::Split(vec![0, 1]),
            Owner::Inner(1),
        ];
        assert!(PartitionPlan::new(&g, 2, owner).is_err());
    }

    #[test]
    fn empty_part_rejected() {
        let g = paper_graph();
        let owner = vec![
            Owner::Inner(0),
            Owner::Inner(0),
            Owner::Inner(0),
            Owner::Inner(0),
        ];
        assert!(PartitionPlan::new(&g, 2, owner).is_err());
    }

    #[test]
    fn unsorted_split_rejected() {
        let g = paper_graph();
        let owner = vec![
            Owner::Inner(0),
            Owner::Split(vec![1, 0]),
            Owner::Split(vec![0, 1]),
            Owner::Inner(1),
        ];
        assert!(PartitionPlan::new(&g, 2, owner).is_err());
    }

    #[test]
    fn edge_parts_resolution() {
        let g = paper_graph();
        let plan = PartitionPlan::from_assignment(&g, &[0, 0, 1, 1]).unwrap();
        assert_eq!(plan.edge_parts(0, 1), vec![0]); // inner–split
        assert_eq!(plan.edge_parts(1, 2), vec![0, 1]); // split–split
        assert_eq!(plan.edge_parts(2, 3), vec![1]); // split–inner
    }

    #[test]
    fn common_parts_intersects() {
        assert_eq!(common_parts(&[0, 1, 3], &[1, 2, 3]), vec![1, 3]);
        assert!(common_parts(&[0], &[1]).is_empty());
    }

    #[test]
    fn three_way_assignment_on_grid() {
        // 3×3 grid split into 3 column strips: middle column vertices that
        // touch both cuts stay 2-way; derived plan must be valid.
        let a = generators::grid2d_laplacian(3, 3);
        let n = a.n_rows();
        let b = vec![0.0; n];
        let g = ElectricGraph::from_system(a, b).unwrap();
        let assignment: Vec<usize> = (0..n).map(|v| v % 3).collect(); // columns
        let plan = PartitionPlan::from_assignment(&g, &assignment).unwrap();
        assert_eq!(plan.n_parts(), 3);
        // Middle-column vertices touch all three parts.
        assert_eq!(plan.owner(4), &Owner::Split(vec![0, 1, 2]));
    }

    #[test]
    fn from_partitioner_builds_valid_plans() {
        use crate::partition::{PartitionConfig, Partitioner};
        let a = generators::grid2d_laplacian(8, 8);
        let b = vec![0.0; 64];
        let g = ElectricGraph::from_system(a, b).unwrap();
        let cfg = PartitionConfig::default();
        for p in [
            Partitioner::Strips,
            Partitioner::Greedy,
            Partitioner::NestedDissection,
            Partitioner::Multilevel,
        ] {
            let plan = PartitionPlan::from_partitioner(&g, p, 4, &cfg).unwrap();
            assert_eq!(plan.n_parts(), 4, "{}", p.name());
            assert!(plan.n_split() > 0, "{}", p.name());
        }
    }

    #[test]
    fn single_part_plan_has_no_splits() {
        let g = paper_graph();
        let plan = PartitionPlan::from_assignment(&g, &[0, 0, 0, 0]).unwrap();
        assert_eq!(plan.n_parts(), 1);
        assert_eq!(plan.n_split(), 0);
    }
}

//! Electric Vertex Splitting (paper §4) — "wire tearing".
//!
//! Given an [`ElectricGraph`] and a [`PartitionPlan`], EVS performs the
//! paper's four steps:
//!
//! 1. the splitting boundary is the plan's split vertices;
//! 2. each boundary vertex is split into one **copy** per part it touches
//!    (two copies = the paper's *twin vertices*; more copies = multilevel
//!    wire tearing, Fig. 6);
//! 3. its vertex weight, its source, and the weights of boundary–boundary
//!    edges are divided between the copies according to a [`SharePolicy`]
//!    (or explicit values, to reproduce Example 4.1 digit-for-digit);
//! 4. **inflow currents** ω are introduced at the resulting ports.
//!
//! The result is a [`SplitSystem`]: one [`Subdomain`] per part holding the
//! local system of eq. (4.3) `[C E; F D][u; y] = [f; g] + [ω; 0]` (copies
//! ordered first, exactly the paper's port/inner block structure), plus the
//! global list of twin-vertex pairs ([`Dtlp`]) between which `dtm-core`
//! inserts directed transmission lines.

use crate::electric::ElectricGraph;
use crate::plan::{Owner, PartitionPlan};
use dtm_sparse::{Coo, Csr, Error, Result};
use std::collections::HashMap;

/// How to divide a split vertex's weight/source (and boundary edge weights)
/// between its copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SharePolicy {
    /// Equal shares for every copy.
    Uniform,
    /// Diagonal shares sized so every copy keeps its local diagonal
    /// dominance: copy `p` receives the sum of the magnitudes of its local
    /// edge weights plus a proportional part of the leftover slack. This
    /// preserves the SNND hypothesis of Theorem 6.1 for diagonally dominant
    /// SPD inputs. Sources follow the diagonal proportions. Edge weights
    /// split uniformly.
    #[default]
    DominanceProportional,
}

/// Topology of the DTLP links between the `k ≥ 2` copies of one split
/// vertex (paper Fig. 6 shows the hierarchical pair-of-pairs layout, which
/// a chain realises; all variants are trees, as multilevel tearing
/// requires).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TwinTopology {
    /// Copies linked in ascending part order: c₁—c₂—…—c_k.
    #[default]
    Chain,
    /// All copies linked to the first: c₁—c_i for i ≥ 2.
    Star,
    /// BFS spanning tree restricted to the given set of *allowed*
    /// (unordered, canonical `(min, max)`) part pairs — used to align the
    /// DTLP wiring with a physical machine topology so every DTLP maps onto
    /// a real directed link (the Algorithm–Architecture Delay Mapping for
    /// multilevel splits). Splitting fails if a vertex's copy parts are not
    /// connected under the allowed pairs.
    TreeWithin(std::collections::BTreeSet<(usize, usize)>),
}

/// Explicit absolute share overrides, keyed by original vertex (diagonal and
/// source) or canonical edge `(min, max)`. Each override lists
/// `(part, value)` pairs that must cover exactly the placement parts and sum
/// to the original quantity. Used to reproduce the paper's Example 4.1.
#[derive(Debug, Clone, Default)]
pub struct ExplicitShares {
    /// Vertex-weight (diagonal) overrides.
    pub diag: HashMap<usize, Vec<(usize, f64)>>,
    /// Source (RHS) overrides.
    pub source: HashMap<usize, Vec<(usize, f64)>>,
    /// Boundary-edge weight overrides.
    pub edge: HashMap<(usize, usize), Vec<(usize, f64)>>,
}

/// Options controlling the split.
#[derive(Debug, Clone, Default)]
pub struct EvsOptions {
    /// Default share policy.
    pub policy: SharePolicy,
    /// DTLP topology among the copies of one vertex.
    pub twin_topology: TwinTopology,
    /// Per-vertex/per-edge explicit overrides.
    pub explicit: ExplicitShares,
}

/// Reference to a port: `(subdomain/part index, port index within it)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortRef {
    /// Subdomain (= part) index.
    pub part: usize,
    /// Port index within the subdomain.
    pub port: usize,
}

/// A Directed Transmission Line *Pair* placeholder created by EVS between
/// two copies of the same original vertex. `dtm-core` assigns it a
/// characteristic impedance and two (possibly different) propagation delays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dtlp {
    /// One endpoint.
    pub a: PortRef,
    /// The other endpoint.
    pub b: PortRef,
    /// The original vertex whose copies this DTLP ties together.
    pub vertex: usize,
}

/// A port of a subdomain: a DTL endpoint attached to a copy vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Local vertex index (always `< n_copies`, copies come first).
    pub local_vertex: usize,
    /// Original vertex id this copy descends from.
    pub global_vertex: usize,
    /// The port at the other end of the DTLP.
    pub peer: PortRef,
    /// Index into [`SplitSystem::dtlps`].
    pub dtlp: usize,
}

/// One part's local system: eq. (4.3) with copies (ports-carrying vertices)
/// ordered before inner vertices.
#[derive(Debug, Clone, PartialEq)]
pub struct Subdomain {
    /// Part index.
    pub part: usize,
    /// Local symmetric matrix `[C E; F D]`.
    pub matrix: Csr,
    /// Local sources `[f; g]`.
    pub rhs: Vec<f64>,
    /// Fraction of the original source `b[g]` that lands on each local
    /// vertex (1 for inner vertices; the source-share fraction for copies).
    /// Lets a *new* global right-hand side be scattered onto the existing
    /// split without re-partitioning — see [`SplitSystem::scatter_rhs`].
    pub rhs_weight: Vec<f64>,
    /// Map local vertex → original vertex.
    pub global_of_local: Vec<usize>,
    /// Number of copy vertices (they occupy local indices `0..n_copies`).
    pub n_copies: usize,
    /// The subdomain's DTL endpoints. Several ports may share a local
    /// vertex (multilevel splits).
    pub ports: Vec<Port>,
}

impl Subdomain {
    /// Local dimension.
    pub fn n_local(&self) -> usize {
        self.matrix.n_rows()
    }

    /// Number of ports (DTL endpoints).
    pub fn n_ports(&self) -> usize {
        self.ports.len()
    }

    /// Parts adjacent through at least one DTLP.
    pub fn neighbor_parts(&self) -> Vec<usize> {
        let mut ps: Vec<usize> = self.ports.iter().map(|p| p.peer.part).collect();
        ps.sort_unstable();
        ps.dedup();
        ps
    }
}

/// The complete result of EVS: subdomains plus the DTLP wiring between them.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitSystem {
    /// Dimension of the original system.
    pub original_n: usize,
    /// One subdomain per part.
    pub subdomains: Vec<Subdomain>,
    /// All twin-vertex links.
    pub dtlps: Vec<Dtlp>,
    /// Copies per original vertex (1 = inner).
    pub copy_count: Vec<usize>,
}

impl SplitSystem {
    /// Number of parts.
    pub fn n_parts(&self) -> usize {
        self.subdomains.len()
    }

    /// Sum the subdomain systems back onto original indices. With exact
    /// arithmetic this reproduces `(A, b)`; floating-point share division
    /// leaves O(ε) differences, so compare with a tolerance (see
    /// [`crate::validate::check_reconstruction`]).
    pub fn reconstruct(&self) -> (Csr, Vec<f64>) {
        let mut coo = Coo::new(self.original_n, self.original_n);
        let mut b = vec![0.0; self.original_n];
        for sd in &self.subdomains {
            for lr in 0..sd.n_local() {
                let gr = sd.global_of_local[lr];
                b[gr] += sd.rhs[lr];
                for (lc, v) in sd.matrix.row(lr) {
                    let gc = sd.global_of_local[lc];
                    // Split invariant: every global index is < original_n.
                    // A failed push can only mean a corrupted SplitSystem;
                    // reconstruction tolerates it by dropping the entry
                    // (debug builds assert instead).
                    let pushed = coo.push(gr, gc, v);
                    debug_assert!(pushed.is_ok(), "global index in range");
                }
            }
        }
        (coo.to_csr(), b)
    }

    /// Gather per-part local solutions into a global vector, averaging the
    /// copies of each split vertex (at convergence all copies agree, so the
    /// average is exact in the limit).
    pub fn gather(&self, locals: &[Vec<f64>]) -> Vec<f64> {
        assert_eq!(locals.len(), self.subdomains.len(), "gather: part count");
        let mut sum = vec![0.0; self.original_n];
        for (sd, x) in self.subdomains.iter().zip(locals) {
            assert_eq!(x.len(), sd.n_local(), "gather: local length");
            for (l, &g) in sd.global_of_local.iter().enumerate() {
                sum[g] += x[l];
            }
        }
        for (s, &c) in sum.iter_mut().zip(&self.copy_count) {
            *s /= c as f64;
        }
        sum
    }

    /// Scatter a *new* global right-hand side onto the existing split: each
    /// subdomain receives `rhs_weight[l] · b[g]` at local vertex `l` — the
    /// same source-share fractions the original split used, so summing the
    /// scattered vectors back reproduces `b` (inner vertices carry weight 1;
    /// copy fractions sum to 1 across a vertex's parts).
    ///
    /// This is what makes RHS streaming cheap: the partition, the shares,
    /// the DTLP wiring and every local factorization stay fixed; only these
    /// `O(n)` local source vectors change between batches.
    ///
    /// # Panics
    /// Panics if `b.len() != original_n`.
    pub fn scatter_rhs(&self, b: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(b.len(), self.original_n, "scatter_rhs: length");
        self.subdomains
            .iter()
            .map(|sd| {
                sd.global_of_local
                    .iter()
                    .zip(&sd.rhs_weight)
                    .map(|(&g, &w)| w * b[g])
                    .collect()
            })
            .collect()
    }

    /// Maximum disagreement between copies of the same vertex — 0 at exact
    /// convergence; a useful distributed-consistency diagnostic.
    pub fn copy_disagreement(&self, locals: &[Vec<f64>]) -> f64 {
        let mut min = vec![f64::INFINITY; self.original_n];
        let mut max = vec![f64::NEG_INFINITY; self.original_n];
        for (sd, x) in self.subdomains.iter().zip(locals) {
            for (l, &g) in sd.global_of_local.iter().enumerate() {
                min[g] = min[g].min(x[l]);
                max[g] = max[g].max(x[l]);
            }
        }
        min.iter()
            .zip(&max)
            .map(|(lo, hi)| hi - lo)
            .fold(0.0_f64, f64::max)
    }
}

/// Precomputed flat (CSR-indexed) split directory: everything the per-part
/// assembly needs, with no hashing on the hot path.
///
/// * Vertex directory: for vertex `v`, slots `vert_ptr[v]..vert_ptr[v+1]`
///   list its parts in ascending order (`vert_part`), the local index of
///   its copy in each part (`vert_local`), and the per-slot diagonal,
///   source, and source-fraction shares (inner vertices have one slot
///   carrying the unsplit quantities).
/// * Edge directory: undirected edges `(u < v)` numbered in CSR
///   upper-triangle order; `edge_ptr[e]..edge_ptr[e+1]` lists the
///   `(part, weight-share)` placement of edge `e`.
/// * Part directory: `part_edge_ptr[p]..part_edge_ptr[p+1]` lists the
///   `(edge id, share)` pairs landing in part `p`, so each part's assembly
///   touches exactly its own edges instead of scanning all of them.
struct SplitIndex {
    n_parts: usize,
    vert_ptr: Vec<usize>,
    vert_part: Vec<usize>,
    vert_local: Vec<usize>,
    diag_share: Vec<f64>,
    src_share: Vec<f64>,
    src_frac: Vec<f64>,
    edge_u: Vec<usize>,
    edge_v: Vec<usize>,
    part_edge_ptr: Vec<usize>,
    part_edge_eid: Vec<usize>,
    part_edge_w: Vec<f64>,
    global_of_local: Vec<Vec<usize>>,
    copy_counts: Vec<usize>,
    dtlps: Vec<Dtlp>,
    ports: Vec<Vec<Port>>,
}

impl SplitIndex {
    /// Local index of vertex `v`'s copy in `part` (linear scan over the
    /// vertex's few slots — bounded by the number of parts it touches).
    fn local_of(&self, v: usize, part: usize) -> usize {
        for s in self.vert_ptr[v]..self.vert_ptr[v + 1] {
            if self.vert_part[s] == part {
                return self.vert_local[s];
            }
        }
        unreachable!("vertex {v} has no copy in part {part}");
    }

    fn slot_of(&self, v: usize, part: usize) -> usize {
        for s in self.vert_ptr[v]..self.vert_ptr[v + 1] {
            if self.vert_part[s] == part {
                return s;
            }
        }
        unreachable!("vertex {v} has no slot in part {part}");
    }
}

fn build_index(
    graph: &ElectricGraph,
    plan: &PartitionPlan,
    options: &EvsOptions,
) -> Result<SplitIndex> {
    let n = graph.n();
    let n_parts = plan.n_parts();

    // --- Vertex directory + local numbering: copies first (ascending
    //     original id), then inner vertices (ascending original id). ------
    let mut vert_ptr = vec![0usize; n + 1];
    let mut copy_counts = vec![0usize; n_parts];
    let mut inner_counts = vec![0usize; n_parts];
    for v in 0..n {
        let parts = plan.owner(v).parts();
        vert_ptr[v + 1] = vert_ptr[v] + parts.len();
        match plan.owner(v) {
            Owner::Inner(p) => inner_counts[*p] += 1,
            Owner::Split(ps) => {
                for &p in ps {
                    copy_counts[p] += 1;
                }
            }
        }
    }
    let n_slots = vert_ptr[n];
    let mut vert_part = vec![0usize; n_slots];
    let mut vert_local = vec![0usize; n_slots];
    let mut global_of_local: Vec<Vec<usize>> = (0..n_parts)
        .map(|p| Vec::with_capacity(copy_counts[p] + inner_counts[p]))
        .collect();
    // Pass 1: copies (split vertices) in ascending vertex order.
    let mut next_local = vec![0usize; n_parts];
    for (v, &s0) in vert_ptr[..n].iter().enumerate() {
        if let Owner::Split(ps) = plan.owner(v) {
            for (k, &p) in ps.iter().enumerate() {
                let s = s0 + k;
                vert_part[s] = p;
                vert_local[s] = next_local[p];
                next_local[p] += 1;
                global_of_local[p].push(v);
            }
        }
    }
    debug_assert_eq!(next_local, copy_counts);
    // Pass 2: inner vertices in ascending vertex order.
    for (v, &s) in vert_ptr[..n].iter().enumerate() {
        if let Owner::Inner(p) = plan.owner(v) {
            vert_part[s] = *p;
            vert_local[s] = next_local[*p];
            next_local[*p] += 1;
            global_of_local[*p].push(v);
        }
    }

    // --- Edge directory: one CSR upper-triangle pass. --------------------
    // Edges are numbered in (u asc, v asc) order; a full-adjacency CSR of
    // incident edge ids is built alongside so the dominance policy can walk
    // a vertex's edges in the same order `graph.neighbors` yields them.
    let mut degree = vec![0usize; n];
    let mut n_edges = 0usize;
    for (u, deg) in degree.iter_mut().enumerate() {
        for (v, _) in graph.neighbors(u) {
            *deg += 1;
            if v > u {
                n_edges += 1;
            }
        }
    }
    let mut adj_ptr = vec![0usize; n + 1];
    for u in 0..n {
        adj_ptr[u + 1] = adj_ptr[u] + degree[u];
    }
    let mut adj_eid = vec![0usize; adj_ptr[n]];
    let mut adj_fill = adj_ptr.clone();
    let mut edge_u = Vec::with_capacity(n_edges);
    let mut edge_v = Vec::with_capacity(n_edges);
    let mut edge_ptr = Vec::with_capacity(n_edges + 1);
    edge_ptr.push(0usize);
    let mut edge_share_part: Vec<usize> = Vec::new();
    let mut edge_share_val: Vec<f64> = Vec::new();
    let have_explicit_edges = !options.explicit.edge.is_empty();
    let mut common_scratch: Vec<usize> = Vec::new();
    for u in 0..n {
        for (v, w) in graph.neighbors(u) {
            if v < u {
                // The (v, u) direction was enumerated at row v; record the
                // incidence for u's adjacency (ascending neighbor order is
                // preserved because rows are visited in ascending u).
                continue;
            }
            let e = edge_u.len();
            edge_u.push(u);
            edge_v.push(v);
            adj_eid[adj_fill[u]] = e;
            adj_fill[u] += 1;
            adj_eid[adj_fill[v]] = e;
            adj_fill[v] += 1;
            // Placement parts, without allocating in the common cases.
            let parts: &[usize] = match (plan.owner(u), plan.owner(v)) {
                (Owner::Inner(p), Owner::Inner(q)) => {
                    debug_assert_eq!(p, q, "validated plans have no cross-inner edges");
                    std::slice::from_ref(p)
                }
                (Owner::Inner(p), Owner::Split(_)) | (Owner::Split(_), Owner::Inner(p)) => {
                    std::slice::from_ref(p)
                }
                (Owner::Split(ps), Owner::Split(qs)) => {
                    common_scratch.clear();
                    common_scratch.extend(crate::plan::common_parts(ps, qs));
                    &common_scratch
                }
            };
            let explicit = if have_explicit_edges {
                options.explicit.edge.get(&(u, v))
            } else {
                None
            };
            match explicit {
                Some(exp) => {
                    validate_shares("edge", exp, parts, w)?;
                    for &(p, s) in exp {
                        edge_share_part.push(p);
                        edge_share_val.push(s);
                    }
                }
                None => {
                    let each = w / parts.len() as f64;
                    for &p in parts {
                        edge_share_part.push(p);
                        edge_share_val.push(each);
                    }
                }
            }
            edge_ptr.push(edge_share_part.len());
        }
    }
    debug_assert_eq!(adj_fill[..n], adj_ptr[1..]);

    // --- Per-slot diagonal / source shares. ------------------------------
    // Inner vertices carry their unsplit quantities in their single slot so
    // the assembly below needs no owner dispatch.
    let mut diag_share = vec![0.0f64; n_slots];
    let mut src_share = vec![0.0f64; n_slots];
    let mut src_frac = vec![1.0f64; n_slots];
    let mut acc: Vec<f64> = Vec::new();
    for v in 0..n {
        let (s0, s1) = (vert_ptr[v], vert_ptr[v + 1]);
        let parts = plan.owner(v).parts();
        if !plan.owner(v).is_split() {
            diag_share[s0] = graph.vertex_weight(v);
            src_share[s0] = graph.source(v);
            continue;
        }
        let w = graph.vertex_weight(v);
        // Diagonal shares, in slot (ascending part) order.
        match options.explicit.diag.get(&v) {
            Some(exp) => {
                validate_shares("diag", exp, parts, w)?;
                for &(p, s) in exp {
                    diag_share[slot_in(&vert_part, s0, s1, p)?] = s;
                }
            }
            None => match options.policy {
                SharePolicy::Uniform => {
                    let each = w / parts.len() as f64;
                    diag_share[s0..s1].fill(each);
                }
                SharePolicy::DominanceProportional => {
                    // Off-diagonal magnitude landing in each part, walking
                    // incident edges in `graph.neighbors` order.
                    acc.clear();
                    acc.resize(parts.len(), 0.0);
                    for &e in &adj_eid[adj_ptr[v]..adj_ptr[v + 1]] {
                        for i in edge_ptr[e]..edge_ptr[e + 1] {
                            let p = edge_share_part[i];
                            if let Some(k) = parts.iter().position(|&q| q == p) {
                                acc[k] += edge_share_val[i].abs();
                            }
                        }
                    }
                    let total: f64 = acc.iter().sum();
                    let slack = w - total;
                    for (k, s) in (s0..s1).enumerate() {
                        let sp = acc[k];
                        diag_share[s] = if total <= 0.0 {
                            w / parts.len() as f64
                        } else if slack >= 0.0 {
                            sp + slack * sp / total
                        } else {
                            w * sp / total
                        };
                    }
                }
            },
        }
        // Source shares and fractions. Policy shares are *defined* as
        // fraction × b so that `scatter_rhs` of the original b reproduces
        // `rhs` bit for bit — the invariant the streaming RHS path relies
        // on. For explicit shares over a zero source the fraction is
        // unrecoverable, so the policy fraction is used for future
        // scatters.
        let b = graph.source(v);
        let policy_frac_of = |k: usize| -> f64 {
            match options.policy {
                SharePolicy::Uniform => 1.0 / parts.len() as f64,
                SharePolicy::DominanceProportional => {
                    let total: f64 = diag_share[s0..s1].iter().map(|d| d.abs()).sum();
                    if total <= 0.0 {
                        1.0 / parts.len() as f64
                    } else {
                        diag_share[s0 + k].abs() / total
                    }
                }
            }
        };
        match options.explicit.source.get(&v) {
            Some(exp) => {
                validate_shares("source", exp, parts, b)?;
                for &(p, s) in exp {
                    let slot = slot_in(&vert_part, s0, s1, p)?;
                    src_share[slot] = s;
                    src_frac[slot] = if b != 0.0 {
                        s / b
                    } else {
                        policy_frac_of(slot - s0)
                    };
                }
            }
            None => {
                for k in 0..parts.len() {
                    let f = policy_frac_of(k);
                    src_frac[s0 + k] = f;
                    src_share[s0 + k] = f * b;
                }
            }
        }
    }

    // --- Per-part edge directory (CSR over parts). -----------------------
    let mut part_edge_ptr = vec![0usize; n_parts + 1];
    for &p in &edge_share_part {
        part_edge_ptr[p + 1] += 1;
    }
    for p in 0..n_parts {
        part_edge_ptr[p + 1] += part_edge_ptr[p];
    }
    let mut part_edge_eid = vec![0usize; edge_share_part.len()];
    let mut part_edge_w = vec![0.0f64; edge_share_part.len()];
    let mut part_fill = part_edge_ptr.clone();
    for e in 0..edge_u.len() {
        for i in edge_ptr[e]..edge_ptr[e + 1] {
            let p = edge_share_part[i];
            part_edge_eid[part_fill[p]] = e;
            part_edge_w[part_fill[p]] = edge_share_val[i];
            part_fill[p] += 1;
        }
    }

    let mut index = SplitIndex {
        n_parts,
        vert_ptr,
        vert_part,
        vert_local,
        diag_share,
        src_share,
        src_frac,
        edge_u,
        edge_v,
        part_edge_ptr,
        part_edge_eid,
        part_edge_w,
        global_of_local,
        copy_counts,
        dtlps: Vec::new(),
        ports: vec![Vec::new(); n_parts],
    };

    // --- DTLPs and ports. ------------------------------------------------
    for v in plan.split_vertices() {
        let parts = plan.owner(v).parts();
        let links: Vec<(usize, usize)> = match &options.twin_topology {
            TwinTopology::Chain => parts.windows(2).map(|w| (w[0], w[1])).collect(),
            TwinTopology::Star => parts[1..].iter().map(|&p| (parts[0], p)).collect(),
            TwinTopology::TreeWithin(allowed) => spanning_tree_links(v, parts, allowed)?,
        };
        for (pa, pb) in links {
            let dtlp_id = index.dtlps.len();
            let port_a = PortRef {
                part: pa,
                port: index.ports[pa].len(),
            };
            let port_b = PortRef {
                part: pb,
                port: index.ports[pb].len(),
            };
            let la = index.local_of(v, pa);
            let lb = index.local_of(v, pb);
            index.ports[pa].push(Port {
                local_vertex: la,
                global_vertex: v,
                peer: port_b,
                dtlp: dtlp_id,
            });
            index.ports[pb].push(Port {
                local_vertex: lb,
                global_vertex: v,
                peer: port_a,
                dtlp: dtlp_id,
            });
            index.dtlps.push(Dtlp {
                a: port_a,
                b: port_b,
                vertex: v,
            });
        }
    }

    Ok(index)
}

/// Slot of `part` within the sorted slot range `s0..s1` of one vertex.
///
/// # Errors
/// Fails when `part` holds no copy of the vertex — `validate_shares`
/// rules this out for explicit share maps, so a hit means the plan and
/// the share map disagree.
fn slot_in(vert_part: &[usize], s0: usize, s1: usize, part: usize) -> Result<usize> {
    (s0..s1).find(|&s| vert_part[s] == part).ok_or_else(|| {
        Error::Parse(format!(
            "explicit share names part {part}, which holds no copy of the vertex"
        ))
    })
}

/// Assemble one part's local system from the precomputed index. Pure in
/// its inputs, so parts can be assembled in any order — or concurrently.
fn assemble_part(p: usize, index: &SplitIndex) -> Result<Subdomain> {
    let gl = &index.global_of_local[p];
    let nl = gl.len();
    let mut coo = Coo::new(nl, nl);
    let mut rhs = vec![0.0; nl];
    let mut rhs_weight = vec![1.0; nl];
    // Diagonals and sources.
    for (l, &v) in gl.iter().enumerate() {
        let s = index.slot_of(v, p);
        let dv = index.diag_share[s];
        if dv != 0.0 {
            coo.push(l, l, dv)?;
        }
        rhs[l] = index.src_share[s];
        rhs_weight[l] = index.src_frac[s];
    }
    // Edges: exactly this part's placements, in ascending edge order.
    for i in index.part_edge_ptr[p]..index.part_edge_ptr[p + 1] {
        let w = index.part_edge_w[i];
        if w == 0.0 {
            continue;
        }
        let e = index.part_edge_eid[i];
        let lu = index.local_of(index.edge_u[e], p);
        let lv = index.local_of(index.edge_v[e], p);
        coo.push(lu, lv, w)?;
        coo.push(lv, lu, w)?;
    }
    Ok(Subdomain {
        part: p,
        matrix: coo.to_csr(),
        rhs,
        rhs_weight,
        global_of_local: gl.clone(),
        n_copies: index.copy_counts[p],
        ports: Vec::new(), // attached by the caller
    })
}

fn finish(
    graph: &ElectricGraph,
    plan: &PartitionPlan,
    mut index: SplitIndex,
    mut subdomains: Vec<Subdomain>,
) -> SplitSystem {
    for (p, sd) in subdomains.iter_mut().enumerate() {
        sd.ports = std::mem::take(&mut index.ports[p]);
    }
    let copy_count = (0..graph.n())
        .map(|v| plan.owner(v).parts().len())
        .collect::<Vec<_>>();
    SplitSystem {
        original_n: graph.n(),
        subdomains,
        dtlps: index.dtlps,
        copy_count,
    }
}

/// Perform Electric Vertex Splitting (serial per-part assembly).
///
/// # Errors
/// Propagates validation failures from explicit share overrides (wrong
/// parts, wrong sums).
pub fn split(
    graph: &ElectricGraph,
    plan: &PartitionPlan,
    options: &EvsOptions,
) -> Result<SplitSystem> {
    let index = build_index(graph, plan, options)?;
    let subdomains = (0..index.n_parts)
        .map(|p| assemble_part(p, &index))
        .collect::<Result<Vec<_>>>()?;
    Ok(finish(graph, plan, index, subdomains))
}

/// Perform Electric Vertex Splitting with the per-part assembly fanned out
/// over `pool`. Produces a `SplitSystem` **bitwise-identical** to
/// [`split`]: parts are assembled from the same precomputed flat index by
/// the same pure function, only the execution order differs — and no part
/// reads another part's output.
pub fn split_parallel(
    graph: &ElectricGraph,
    plan: &PartitionPlan,
    options: &EvsOptions,
    pool: &rayon::ThreadPool,
) -> Result<SplitSystem> {
    let index = build_index(graph, plan, options)?;
    let n_parts = index.n_parts;
    let slots: Vec<std::sync::Mutex<Option<Result<Subdomain>>>> =
        (0..n_parts).map(|_| std::sync::Mutex::new(None)).collect();
    pool.for_each_index(n_parts, |p| {
        let sd = assemble_part(p, &index);
        // A poisoned lock only means another assembly panicked; this
        // slot's own result is still sound to store.
        *slots[p]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(sd);
    });
    let subdomains = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .unwrap_or_else(|| {
                    Err(Error::Parse(
                        "EVS parallel assembly left a part unassembled".into(),
                    ))
                })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(finish(graph, plan, index, subdomains))
}

/// BFS spanning tree over `parts` using only `allowed` pairs; edges are
/// reported `(parent, child)` in discovery order.
fn spanning_tree_links(
    vertex: usize,
    parts: &[usize],
    allowed: &std::collections::BTreeSet<(usize, usize)>,
) -> Result<Vec<(usize, usize)>> {
    let ok = |a: usize, b: usize| allowed.contains(&(a.min(b), a.max(b)));
    let mut links = Vec::with_capacity(parts.len() - 1);
    let mut reached = vec![false; parts.len()];
    reached[0] = true;
    let mut frontier = vec![parts[0]];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &p in &frontier {
            for (i, &q) in parts.iter().enumerate() {
                if !reached[i] && ok(p, q) {
                    reached[i] = true;
                    links.push((p, q));
                    next.push(q);
                }
            }
        }
        frontier = next;
    }
    if let Some(i) = reached.iter().position(|r| !r) {
        return Err(Error::Parse(format!(
            "split vertex {vertex}: copy part {} unreachable from part {} \
             under the allowed machine links; cannot realise the \
             algorithm-architecture delay mapping",
            parts[i], parts[0]
        )));
    }
    Ok(links)
}

fn validate_shares(
    what: &'static str,
    shares: &[(usize, f64)],
    parts: &[usize],
    total: f64,
) -> Result<()> {
    let mut share_parts: Vec<usize> = shares.iter().map(|&(p, _)| p).collect();
    share_parts.sort_unstable();
    if share_parts != parts {
        return Err(Error::Parse(format!(
            "explicit {what} shares cover parts {share_parts:?}, expected {parts:?}"
        )));
    }
    let sum: f64 = shares.iter().map(|&(_, v)| v).sum();
    let scale = total.abs().max(1.0);
    if (sum - total).abs() > 1e-9 * scale {
        return Err(Error::Parse(format!(
            "explicit {what} shares sum to {sum}, expected {total}"
        )));
    }
    Ok(())
}

/// The paper's Example 4.1 explicit shares: splits system (3.2) at
/// `G_B = {V2, V3}` into subsystems (4.1) and (4.2).
pub fn paper_example_shares() -> ExplicitShares {
    let mut explicit = ExplicitShares::default();
    explicit.diag.insert(1, vec![(0, 2.5), (1, 3.5)]);
    explicit.diag.insert(2, vec![(0, 3.3), (1, 3.7)]);
    explicit.source.insert(1, vec![(0, 0.8), (1, 1.2)]);
    explicit.source.insert(2, vec![(0, 1.6), (1, 1.4)]);
    explicit.edge.insert((1, 2), vec![(0, -0.9), (1, -1.1)]);
    explicit
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_sparse::generators;

    fn paper_graph() -> ElectricGraph {
        let (a, b) = generators::paper_example_system();
        ElectricGraph::from_system(a, b).unwrap()
    }

    fn paper_split() -> SplitSystem {
        let g = paper_graph();
        let plan = PartitionPlan::from_assignment(&g, &[0, 0, 1, 1]).unwrap();
        let options = EvsOptions {
            explicit: paper_example_shares(),
            ..Default::default()
        };
        split(&g, &plan, &options).unwrap()
    }

    #[test]
    fn example_4_1_subsystem_1_exact() {
        // (4.1): [5 −1 −1; −1 2.5 −0.9; −1 −0.9 3.3] [x1 x2a x3a] = [1 0.8 1.6] + ω
        let ss = paper_split();
        let sd = &ss.subdomains[0];
        // Local order: copies first (V2a=0, V3a=1), inner V1=2.
        assert_eq!(sd.global_of_local, vec![1, 2, 0]);
        assert_eq!(sd.n_copies, 2);
        let m = &sd.matrix;
        assert_eq!(m.get(2, 2), 5.0);
        assert_eq!(m.get(0, 0), 2.5);
        assert_eq!(m.get(1, 1), 3.3);
        assert_eq!(m.get(0, 1), -0.9);
        assert_eq!(m.get(1, 0), -0.9);
        assert_eq!(m.get(2, 0), -1.0);
        assert_eq!(m.get(2, 1), -1.0);
        assert_eq!(sd.rhs, vec![0.8, 1.6, 1.0]);
    }

    #[test]
    fn example_4_1_subsystem_2_exact() {
        // (4.2): [3.5 −1.1 −1; −1.1 3.7 −2; −1 −2 8], rhs [1.2 1.4 4]
        let ss = paper_split();
        let sd = &ss.subdomains[1];
        assert_eq!(sd.global_of_local, vec![1, 2, 3]);
        let m = &sd.matrix;
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.get(1, 1), 3.7);
        assert_eq!(m.get(2, 2), 8.0);
        assert_eq!(m.get(0, 1), -1.1);
        assert_eq!(m.get(0, 2), -1.0);
        assert_eq!(m.get(1, 2), -2.0);
        assert_eq!(sd.rhs, vec![1.2, 1.4, 4.0]);
    }

    #[test]
    fn example_4_1_ports_and_dtlps() {
        let ss = paper_split();
        assert_eq!(ss.dtlps.len(), 2, "one DTLP per twin pair (V2, V3)");
        assert_eq!(ss.subdomains[0].n_ports(), 2);
        assert_eq!(ss.subdomains[1].n_ports(), 2);
        // Port 0 of each part belongs to V2 and they peer with each other.
        let p0 = &ss.subdomains[0].ports[0];
        assert_eq!(p0.global_vertex, 1);
        assert_eq!(p0.peer, PortRef { part: 1, port: 0 });
        let p1 = &ss.subdomains[1].ports[0];
        assert_eq!(p1.peer, PortRef { part: 0, port: 0 });
        assert_eq!(ss.subdomains[0].neighbor_parts(), vec![1]);
    }

    #[test]
    fn reconstruction_recovers_original() {
        let ss = paper_split();
        let (a2, b2) = ss.reconstruct();
        let (a, b) = generators::paper_example_system();
        assert!(a.to_dense().max_abs_diff(&a2.to_dense()) < 1e-12);
        for (u, v) in b.iter().zip(&b2) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_policy_splits_evenly() {
        let g = paper_graph();
        let plan = PartitionPlan::from_assignment(&g, &[0, 0, 1, 1]).unwrap();
        let options = EvsOptions {
            policy: SharePolicy::Uniform,
            ..Default::default()
        };
        let ss = split(&g, &plan, &options).unwrap();
        // V2's weight 6 splits 3/3; V2–V3 edge −2 splits −1/−1.
        assert_eq!(ss.subdomains[0].matrix.get(0, 0), 3.0);
        assert_eq!(ss.subdomains[1].matrix.get(0, 0), 3.0);
        assert_eq!(ss.subdomains[0].matrix.get(0, 1), -1.0);
    }

    #[test]
    fn dominance_proportional_keeps_subdomains_dominant() {
        let a = generators::grid2d_random(6, 6, 1.0, 5);
        let n = a.n_rows();
        let g = ElectricGraph::from_system(a, vec![1.0; n]).unwrap();
        let asg = crate::partition::grid_blocks(6, 6, 2, 2);
        let plan = PartitionPlan::from_assignment(&g, &asg).unwrap();
        let ss = split(&g, &plan, &EvsOptions::default()).unwrap();
        for sd in &ss.subdomains {
            assert!(
                sd.matrix.is_diag_dominant(),
                "part {} lost diagonal dominance",
                sd.part
            );
        }
    }

    #[test]
    fn gather_averages_copies() {
        let ss = paper_split();
        // Pretend both parts solved to the same global values [x1..x4] =
        // [1, 2, 3, 4]; gather must reproduce them exactly.
        let mk = |sd: &Subdomain| {
            sd.global_of_local
                .iter()
                .map(|&g| (g + 1) as f64)
                .collect::<Vec<_>>()
        };
        let locals: Vec<Vec<f64>> = ss.subdomains.iter().map(mk).collect();
        let x = ss.gather(&locals);
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ss.copy_disagreement(&locals), 0.0);
    }

    #[test]
    fn copy_disagreement_detects_mismatch() {
        let ss = paper_split();
        let mut locals: Vec<Vec<f64>> = ss
            .subdomains
            .iter()
            .map(|sd| vec![0.0; sd.n_local()])
            .collect();
        locals[0][0] = 1.0; // V2's copy in part 0 disagrees with part 1
        assert_eq!(ss.copy_disagreement(&locals), 1.0);
    }

    #[test]
    fn three_way_split_builds_chain() {
        // 3-strip partition of a 3×3 grid: middle column splits 3 ways →
        // each such vertex gets 2 chained DTLPs.
        let a = generators::grid2d_laplacian(3, 3);
        let g = ElectricGraph::from_system(a, vec![0.0; 9]).unwrap();
        let asg: Vec<usize> = (0..9).map(|v| v % 3).collect();
        let plan = PartitionPlan::from_assignment(&g, &asg).unwrap();
        let ss = split(&g, &plan, &EvsOptions::default()).unwrap();
        // Vertex 4 (grid centre) splits into parts {0,1,2} with chain 0–1–2:
        let v4_dtlps: Vec<&Dtlp> = ss.dtlps.iter().filter(|d| d.vertex == 4).collect();
        assert_eq!(v4_dtlps.len(), 2);
        assert_eq!(v4_dtlps[0].a.part, 0);
        assert_eq!(v4_dtlps[0].b.part, 1);
        assert_eq!(v4_dtlps[1].a.part, 1);
        assert_eq!(v4_dtlps[1].b.part, 2);
        // Reconstruction still exact.
        let (a2, b2) = ss.reconstruct();
        let (a, _) = generators::paper_example_system();
        let _ = a;
        let orig = generators::grid2d_laplacian(3, 3);
        assert!(orig.to_dense().max_abs_diff(&a2.to_dense()) < 1e-12);
        assert!(b2.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn star_topology_links_to_first_part() {
        let a = generators::grid2d_laplacian(3, 3);
        let g = ElectricGraph::from_system(a, vec![0.0; 9]).unwrap();
        let asg: Vec<usize> = (0..9).map(|v| v % 3).collect();
        let plan = PartitionPlan::from_assignment(&g, &asg).unwrap();
        let options = EvsOptions {
            twin_topology: TwinTopology::Star,
            ..Default::default()
        };
        let ss = split(&g, &plan, &options).unwrap();
        let v4: Vec<&Dtlp> = ss.dtlps.iter().filter(|d| d.vertex == 4).collect();
        assert_eq!(v4.len(), 2);
        assert!(v4.iter().all(|d| d.a.part == 0));
    }

    #[test]
    fn explicit_share_sum_mismatch_rejected() {
        let g = paper_graph();
        let plan = PartitionPlan::from_assignment(&g, &[0, 0, 1, 1]).unwrap();
        let mut explicit = ExplicitShares::default();
        explicit.diag.insert(1, vec![(0, 1.0), (1, 1.0)]); // sums to 2 ≠ 6
        let options = EvsOptions {
            explicit,
            ..Default::default()
        };
        assert!(split(&g, &plan, &options).is_err());
    }

    #[test]
    fn explicit_share_wrong_parts_rejected() {
        let g = paper_graph();
        let plan = PartitionPlan::from_assignment(&g, &[0, 0, 1, 1]).unwrap();
        let mut explicit = ExplicitShares::default();
        explicit.diag.insert(1, vec![(0, 6.0)]); // missing part 1
        let options = EvsOptions {
            explicit,
            ..Default::default()
        };
        assert!(split(&g, &plan, &options).is_err());
    }

    #[test]
    fn grid_blocks_reconstruction_on_random_grid() {
        let a = generators::grid2d_random(9, 9, 1.0, 11);
        let n = a.n_rows();
        let b = generators::random_rhs(n, 12);
        let g = ElectricGraph::from_system(a.clone(), b.clone()).unwrap();
        let asg = crate::partition::grid_blocks(9, 9, 3, 3);
        let plan = PartitionPlan::from_assignment(&g, &asg).unwrap();
        let ss = split(&g, &plan, &EvsOptions::default()).unwrap();
        let (a2, b2) = ss.reconstruct();
        assert!(a.to_dense().max_abs_diff(&a2.to_dense()) < 1e-10);
        for (u, v) in b.iter().zip(&b2) {
            assert!((u - v).abs() < 1e-10);
        }
        // Every part is a real subdomain with ports.
        for sd in &ss.subdomains {
            assert!(sd.n_local() > 0);
            assert!(sd.n_ports() > 0);
            assert_eq!(
                sd.ports
                    .iter()
                    .filter(|p| p.local_vertex >= sd.n_copies)
                    .count(),
                0,
                "ports must sit on copy vertices"
            );
        }
    }
}

#[cfg(test)]
mod tree_within_tests {
    use super::*;
    use crate::partition;
    use crate::plan::PartitionPlan;
    use dtm_sparse::generators;
    use std::collections::BTreeSet;

    /// Undirected pair set of a px×py processor mesh.
    fn mesh_pairs(px: usize, py: usize) -> BTreeSet<(usize, usize)> {
        let mut s = BTreeSet::new();
        for r in 0..py {
            for c in 0..px {
                let p = r * px + c;
                if c + 1 < px {
                    s.insert((p, p + 1));
                }
                if r + 1 < py {
                    s.insert((p, p + px));
                }
            }
        }
        s
    }

    #[test]
    fn tree_within_respects_mesh_adjacency() {
        // 9×9 grid on a 3×3 processor mesh: corner vertices split 3 ways;
        // every DTLP must connect mesh-adjacent parts.
        let a = generators::grid2d_laplacian(9, 9);
        let g = ElectricGraph::from_system(a, vec![0.0; 81]).unwrap();
        let asg = partition::grid_blocks(9, 9, 3, 3);
        let plan = PartitionPlan::from_assignment(&g, &asg).unwrap();
        let pairs = mesh_pairs(3, 3);
        let options = EvsOptions {
            twin_topology: TwinTopology::TreeWithin(pairs.clone()),
            ..Default::default()
        };
        let ss = split(&g, &plan, &options).unwrap();
        for d in &ss.dtlps {
            let (lo, hi) = (d.a.part.min(d.b.part), d.a.part.max(d.b.part));
            assert!(
                pairs.contains(&(lo, hi)),
                "DTLP {lo}–{hi} is not a machine link"
            );
        }
        // Reconstruction still exact and wiring consistent.
        crate::validate::check_wiring(&ss).unwrap();
        let (a2, _) = ss.reconstruct();
        let orig = generators::grid2d_laplacian(9, 9);
        assert!(orig.to_dense().max_abs_diff(&a2.to_dense()) < 1e-12);
    }

    #[test]
    fn scatter_rhs_reproduces_the_split_sources() {
        // Default (uniform) policy on a grid split: re-scattering the
        // original b must reproduce every subdomain's rhs, and the weights
        // of each vertex's copies must sum to 1.
        let a = generators::grid2d_random(6, 6, 1.0, 17);
        let b = generators::random_rhs(36, 18);
        let g = ElectricGraph::from_system(a, b.clone()).unwrap();
        let plan = PartitionPlan::from_assignment(&g, &partition::grid_strips(6, 6, 3)).unwrap();
        let ss = split(&g, &plan, &EvsOptions::default()).unwrap();
        let scattered = ss.scatter_rhs(&b);
        for (sd, got) in ss.subdomains.iter().zip(&scattered) {
            for (l, (u, v)) in got.iter().zip(&sd.rhs).enumerate() {
                assert_eq!(u, v, "local {l}: scatter must be bitwise-faithful");
            }
        }
        let mut weight_sum = vec![0.0; ss.original_n];
        for sd in &ss.subdomains {
            for (l, &gv) in sd.global_of_local.iter().enumerate() {
                weight_sum[gv] += sd.rhs_weight[l];
            }
        }
        for (v, w) in weight_sum.iter().enumerate() {
            assert!((w - 1.0).abs() < 1e-12, "vertex {v}: weights sum to {w}");
        }
        // A fresh RHS sums back exactly onto original indices.
        let b2 = generators::random_rhs(36, 19);
        let scattered2 = ss.scatter_rhs(&b2);
        let mut sum = vec![0.0; ss.original_n];
        for (sd, x) in ss.subdomains.iter().zip(&scattered2) {
            for (l, &gv) in sd.global_of_local.iter().enumerate() {
                sum[gv] += x[l];
            }
        }
        for (u, v) in sum.iter().zip(&b2) {
            assert!((u - v).abs() <= 1e-14 * v.abs().max(1.0));
        }
    }

    #[test]
    fn scatter_rhs_recovers_explicit_paper_shares() {
        // The paper's explicit source shares (0.8/1.2 and 1.6/1.4) are
        // value-proportional fractions of b = 2 and 3: scattering the
        // original b must reproduce them exactly.
        let (a, b) = generators::paper_example_system();
        let g = ElectricGraph::from_system(a, b.clone()).unwrap();
        let plan = PartitionPlan::from_assignment(&g, &[0, 0, 1, 1]).unwrap();
        let options = EvsOptions {
            explicit: paper_example_shares(),
            ..Default::default()
        };
        let ss = split(&g, &plan, &options).unwrap();
        let scattered = ss.scatter_rhs(&b);
        for (sd, got) in ss.subdomains.iter().zip(&scattered) {
            for (u, v) in got.iter().zip(&sd.rhs) {
                assert!((u - v).abs() < 1e-15, "{u} vs {v}");
            }
        }
    }

    #[test]
    fn tree_within_fails_when_disconnected() {
        // Allow no pairs at all: any split vertex must fail.
        let (a, b) = generators::paper_example_system();
        let g = ElectricGraph::from_system(a, b).unwrap();
        let plan = PartitionPlan::from_assignment(&g, &[0, 0, 1, 1]).unwrap();
        let options = EvsOptions {
            twin_topology: TwinTopology::TreeWithin(BTreeSet::new()),
            ..Default::default()
        };
        assert!(split(&g, &plan, &options).is_err());
    }
}

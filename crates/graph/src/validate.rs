//! Validation of an EVS split against the hypotheses of convergence
//! Theorem 6.1 and the exact-reconstruction invariant.

use crate::evs::SplitSystem;
use dtm_sparse::cholesky::{Definiteness, DenseLdlt};
use dtm_sparse::{Csr, Error, Result};

/// Outcome of [`check_theorem_hypothesis`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TheoremCheck {
    /// Per-part classification.
    pub parts: Vec<Definiteness>,
    /// Number of strictly SPD subdomains.
    pub n_spd: usize,
    /// Whether Theorem 6.1's hypothesis holds: every part SNND and at least
    /// one SPD.
    pub satisfied: bool,
}

/// Classify every subdomain matrix; Theorem 6.1 requires all parts SNND
/// (PSD) with at least one strictly SPD.
pub fn check_theorem_hypothesis(ss: &SplitSystem, tol: f64) -> TheoremCheck {
    let parts: Vec<Definiteness> = ss
        .subdomains
        .iter()
        .map(|sd| DenseLdlt::classify_csr(&sd.matrix, tol))
        .collect();
    let n_spd = parts
        .iter()
        .filter(|&&d| d == Definiteness::PositiveDefinite)
        .count();
    let all_snnd = parts.iter().all(|&d| d != Definiteness::Indefinite);
    TheoremCheck {
        satisfied: all_snnd && n_spd >= 1,
        n_spd,
        parts,
    }
}

/// Verify the split subsystems sum back to the original `(A, b)` within
/// `tol` (relative to the largest entry magnitude).
///
/// # Errors
/// [`Error::Parse`] describing the first mismatching entry.
pub fn check_reconstruction(ss: &SplitSystem, a: &Csr, b: &[f64], tol: f64) -> Result<()> {
    let (a2, b2) = ss.reconstruct();
    if a2.n_rows() != a.n_rows() {
        return Err(Error::DimensionMismatch {
            context: "check_reconstruction",
            expected: a.n_rows(),
            actual: a2.n_rows(),
        });
    }
    let scale = a.max_abs().max(1.0);
    for r in 0..a.n_rows() {
        for (c, v) in a.row(r) {
            let v2 = a2.get(r, c);
            if (v - v2).abs() > tol * scale {
                return Err(Error::Parse(format!(
                    "reconstruction mismatch at A({r}, {c}): {v} vs {v2}"
                )));
            }
        }
        // Also catch spurious entries the original lacks.
        for (c, v2) in a2.row(r) {
            if a.get(r, c) == 0.0 && v2.abs() > tol * scale {
                return Err(Error::Parse(format!(
                    "reconstruction created spurious entry A({r}, {c}) = {v2}"
                )));
            }
        }
    }
    let bscale = b.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
    for (i, (u, v)) in b.iter().zip(&b2).enumerate() {
        if (u - v).abs() > tol * bscale {
            return Err(Error::Parse(format!(
                "reconstruction mismatch at b[{i}]: {u} vs {v}"
            )));
        }
    }
    Ok(())
}

/// Structural sanity of the DTLP wiring: peers are mutual, dtlp indices
/// consistent, ports sit on copy vertices.
///
/// # Errors
/// [`Error::Parse`] describing the first inconsistency.
pub fn check_wiring(ss: &SplitSystem) -> Result<()> {
    for (pi, sd) in ss.subdomains.iter().enumerate() {
        if sd.part != pi {
            return Err(Error::Parse(format!(
                "subdomain at position {pi} claims part {}",
                sd.part
            )));
        }
        for (qi, port) in sd.ports.iter().enumerate() {
            if port.local_vertex >= sd.n_copies {
                return Err(Error::Parse(format!(
                    "part {pi} port {qi} sits on non-copy vertex {}",
                    port.local_vertex
                )));
            }
            let peer_sd = ss
                .subdomains
                .get(port.peer.part)
                .ok_or_else(|| Error::Parse(format!("part {pi} port {qi}: bad peer part")))?;
            let peer = peer_sd
                .ports
                .get(port.peer.port)
                .ok_or_else(|| Error::Parse(format!("part {pi} port {qi}: bad peer port")))?;
            if peer.peer.part != pi || peer.peer.port != qi {
                return Err(Error::Parse(format!(
                    "part {pi} port {qi}: peer does not point back"
                )));
            }
            if peer.dtlp != port.dtlp {
                return Err(Error::Parse(format!(
                    "part {pi} port {qi}: dtlp id mismatch"
                )));
            }
            if peer.global_vertex != port.global_vertex {
                return Err(Error::Parse(format!(
                    "part {pi} port {qi}: twin ports belong to different vertices"
                )));
            }
        }
    }
    // Each DTLP's endpoints must reference each other.
    for (di, d) in ss.dtlps.iter().enumerate() {
        let pa = &ss.subdomains[d.a.part].ports[d.a.port];
        let pb = &ss.subdomains[d.b.part].ports[d.b.port];
        if pa.dtlp != di || pb.dtlp != di {
            return Err(Error::Parse(format!("dtlp {di}: endpoint ids disagree")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::electric::ElectricGraph;
    use crate::evs::{split, EvsOptions};
    use crate::partition;
    use crate::plan::PartitionPlan;
    use dtm_sparse::generators;

    fn split_grid(
        nx: usize,
        ny: usize,
        px: usize,
        py: usize,
        seed: u64,
    ) -> (SplitSystem, Csr, Vec<f64>) {
        let a = generators::grid2d_random(nx, ny, 1.0, seed);
        let b = generators::random_rhs(a.n_rows(), seed + 1);
        let g = ElectricGraph::from_system(a.clone(), b.clone()).unwrap();
        let asg = partition::grid_blocks(nx, ny, px, py);
        let plan = PartitionPlan::from_assignment(&g, &asg).unwrap();
        (split(&g, &plan, &EvsOptions::default()).unwrap(), a, b)
    }

    #[test]
    fn theorem_hypothesis_on_dominant_grid() {
        let (ss, _, _) = split_grid(8, 8, 2, 2, 3);
        let check = check_theorem_hypothesis(&ss, 1e-10);
        assert!(check.satisfied, "classes {:?}", check.parts);
        assert!(check.n_spd >= 1);
    }

    #[test]
    fn reconstruction_of_block_split() {
        let (ss, a, b) = split_grid(10, 7, 3, 2, 9);
        check_reconstruction(&ss, &a, &b, 1e-12).unwrap();
    }

    #[test]
    fn wiring_is_consistent() {
        let (ss, _, _) = split_grid(9, 9, 3, 3, 5);
        check_wiring(&ss).unwrap();
    }

    #[test]
    fn reconstruction_detects_tampering() {
        let (mut ss, a, b) = split_grid(6, 6, 2, 2, 1);
        // Corrupt one subdomain diagonal entry.
        let vals = ss.subdomains[0].matrix.values_mut();
        vals[0] += 0.5;
        assert!(check_reconstruction(&ss, &a, &b, 1e-12).is_err());
    }

    #[test]
    fn wiring_detects_tampering() {
        let (mut ss, _, _) = split_grid(6, 6, 2, 2, 2);
        let p = ss.subdomains[0].ports[0].peer;
        ss.subdomains[0].ports[0].peer = crate::evs::PortRef {
            part: p.part,
            port: p.port + 1,
        };
        assert!(check_wiring(&ss).is_err());
    }

    #[test]
    fn paper_example_satisfies_theorem() {
        let (a, b) = generators::paper_example_system();
        let g = ElectricGraph::from_system(a, b).unwrap();
        let plan = PartitionPlan::from_assignment(&g, &[0, 0, 1, 1]).unwrap();
        let options = EvsOptions {
            explicit: crate::evs::paper_example_shares(),
            ..Default::default()
        };
        let ss = split(&g, &plan, &options).unwrap();
        let check = check_theorem_hypothesis(&ss, 1e-10);
        // Both (4.1) and (4.2) are strictly SPD.
        assert_eq!(check.n_spd, 2);
        assert!(check.satisfied);
    }
}

//! Property tests for the parallel setup pipeline: `split_parallel` must
//! produce a `SplitSystem` bitwise-identical to the serial `split` (local
//! numbering, matrices, edge shares, scattered RHS, ports, DTLPs), and the
//! heap-based greedy cover in `PartitionPlan::from_assignment` must choose
//! exactly the boundary the original full-rescan formulation chose.

use dtm_graph::electric::ElectricGraph;
use dtm_graph::evs::{split, split_parallel, EvsOptions, SharePolicy, TwinTopology};
use dtm_graph::plan::{Owner, PartitionPlan};
use dtm_sparse::Coo;
use proptest::prelude::*;

/// Random symmetric diagonally-dominant (hence SPD) system over a path
/// plus `extra` chords, with a deterministic pseudo-random RHS.
fn random_system(n: usize, edges: &[(usize, usize, f64)], seed: u64) -> ElectricGraph {
    let mut dominance = vec![1.0f64; n];
    let mut coo = Coo::new(n, n);
    let mut seen = std::collections::BTreeSet::new();
    for i in 0..n - 1 {
        seen.insert((i, i + 1));
        coo.push_sym(i, i + 1, -1.0).unwrap();
        dominance[i] += 1.0;
        dominance[i + 1] += 1.0;
    }
    for &(a, b, w) in edges {
        let (r, c) = (a.min(b) % n, a.max(b) % n);
        if r == c || !seen.insert((r, c)) {
            continue;
        }
        coo.push_sym(r, c, -w).unwrap();
        dominance[r] += w.abs();
        dominance[c] += w.abs();
    }
    for (i, d) in dominance.iter().enumerate() {
        coo.push(i, i, d + 0.25).unwrap();
    }
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let b: Vec<f64> = (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect();
    ElectricGraph::from_system(coo.to_csr(), b).unwrap()
}

/// Force every part to be non-empty (vertex `i < n_parts` goes to part `i`).
fn dense_assignment(mut asg: Vec<usize>, n_parts: usize) -> Vec<usize> {
    for (i, a) in asg.iter_mut().enumerate() {
        if i < n_parts {
            *a = i;
        } else {
            *a %= n_parts;
        }
    }
    asg
}

/// The original full-rescan greedy cover (BTreeSet over endpoints of
/// still-uncovered edges, `max_by_key((live, cut, v))`), retained here as
/// the executable specification the production heap version must match.
fn reference_boundary(graph: &ElectricGraph, assignment: &[usize]) -> Vec<bool> {
    let n = graph.n();
    let mut cut_edges: Vec<(usize, usize)> = Vec::new();
    let mut cut_degree = vec![0usize; n];
    for u in 0..n {
        for (v, _) in graph.neighbors(u) {
            if v > u && assignment[u] != assignment[v] {
                cut_edges.push((u, v));
                cut_degree[u] += 1;
                cut_degree[v] += 1;
            }
        }
    }
    let mut in_boundary = vec![false; n];
    let mut uncovered = cut_edges;
    let mut live_degree = cut_degree.clone();
    while !uncovered.is_empty() {
        let &best = uncovered
            .iter()
            .flat_map(|&(u, v)| [u, v])
            .collect::<std::collections::BTreeSet<_>>()
            .iter()
            .max_by_key(|&&v| (live_degree[v], cut_degree[v], v))
            .expect("uncovered non-empty");
        in_boundary[best] = true;
        uncovered.retain(|&(u, v)| {
            let covered = u == best || v == best;
            if covered {
                live_degree[u] -= 1;
                live_degree[v] -= 1;
            }
            !covered
        });
    }
    in_boundary
}

fn pool() -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(3)
        .build()
        .expect("test pool")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Parallel and serial EVS agree bit for bit on every field of the
    /// `SplitSystem`, for both share policies and both simple topologies.
    #[test]
    fn split_parallel_is_bitwise_serial(
        n in 6usize..32,
        n_parts in 2usize..5,
        edges in proptest::collection::vec((0usize..64, 0usize..64, 0.1f64..1.5), 0..60),
        raw_asg in proptest::collection::vec(0usize..8, 32..33),
        seed in any::<u64>(),
    ) {
        let g = random_system(n, &edges, seed);
        let asg = dense_assignment(raw_asg[..n].to_vec(), n_parts);
        let plan = PartitionPlan::from_assignment(&g, &asg).expect("derived plans are valid");
        let pool = pool();
        for policy in [SharePolicy::Uniform, SharePolicy::DominanceProportional] {
            for topology in [TwinTopology::Chain, TwinTopology::Star] {
                let options = EvsOptions {
                    policy,
                    twin_topology: topology,
                    ..Default::default()
                };
                let serial = split(&g, &plan, &options).expect("serial split");
                let parallel =
                    split_parallel(&g, &plan, &options, &pool).expect("parallel split");
                prop_assert_eq!(&serial, &parallel, "policy {:?}", policy);
                // Scattered RHS is derived from rhs_weight; check the
                // end-to-end streaming path is bitwise too.
                let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
                let s1 = serial.scatter_rhs(&b);
                let s2 = parallel.scatter_rhs(&b);
                for (c1, c2) in s1.iter().zip(&s2) {
                    for (u, v) in c1.iter().zip(c2) {
                        prop_assert!(u.to_bits() == v.to_bits());
                    }
                }
            }
        }
    }

    /// The heap-based greedy cover selects exactly the boundary the
    /// original O(boundary × cut²) rescan selected.
    #[test]
    fn heap_cover_matches_rescan_reference(
        n in 6usize..48,
        n_parts in 2usize..6,
        edges in proptest::collection::vec((0usize..96, 0usize..96, 0.1f64..1.5), 0..90),
        raw_asg in proptest::collection::vec(0usize..8, 48..49),
        seed in any::<u64>(),
    ) {
        let g = random_system(n, &edges, seed);
        let asg = dense_assignment(raw_asg[..n].to_vec(), n_parts);
        let expected = reference_boundary(&g, &asg);
        let plan = PartitionPlan::from_assignment(&g, &asg).expect("derived plans are valid");
        for (v, &exp) in expected.iter().enumerate().take(n) {
            let is_split = matches!(plan.owner(v), Owner::Split(_));
            prop_assert_eq!(
                is_split, exp,
                "vertex {} boundary membership diverged from the rescan reference", v
            );
        }
    }
}

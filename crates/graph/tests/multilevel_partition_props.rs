//! Property tests for `partition::multilevel`: on random 2-D and 3-D grid
//! Laplacians the multilevel partition must (a) cover every vertex with
//! every part non-empty, (b) respect the balance slack (up to nested
//! dissection's own imbalance, the documented floor), (c) be deterministic
//! for a fixed seed, and (d) never cut more edges than `nested_dissection`
//! — the guarantee `multilevel` provides by construction. FM refinement on
//! its own must never break coverage or balance, and never worsen the cut
//! on an already-balanced partition.

use dtm_graph::partition::{
    metrics, multilevel, nested_dissection, refine_assignment, PartitionConfig,
};
use dtm_sparse::{generators, Csr};
use proptest::prelude::*;

/// Per-part sizes must cover all `n` vertices with no empty part.
fn assert_full_coverage(
    sizes: &[usize],
    n: usize,
    k: usize,
) -> std::result::Result<(), TestCaseError> {
    prop_assert_eq!(sizes.len(), k);
    prop_assert_eq!(sizes.iter().sum::<usize>(), n);
    prop_assert!(sizes.iter().all(|&s| s > 0), "empty part in {sizes:?}");
    Ok(())
}

/// The documented balance guarantee: no part exceeds
/// `max(max_part_weight, nested dissection's largest part)`.
fn balance_bound(a: &Csr, k: usize, config: &PartitionConfig) -> u64 {
    let nd_max = *metrics(a, &nested_dissection(a, k))
        .sizes
        .iter()
        .max()
        .expect("k ≥ 1") as u64;
    config.max_part_weight(a.n_rows() as u64, k).max(nd_max)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// 2-D grids: coverage, balance, determinism, cut ≤ nested dissection.
    #[test]
    fn multilevel_on_2d_grids(
        nx in 4usize..28,
        ny in 4usize..28,
        k in 2usize..9,
        seed in 0u64..1000,
    ) {
        prop_assume!(k <= (nx * ny) / 4);
        let a = generators::grid2d_laplacian(nx, ny);
        let config = PartitionConfig { seed, ..PartitionConfig::default() };
        let ml = multilevel(&a, k, &config);
        let m = metrics(&a, &ml);
        assert_full_coverage(&m.sizes, nx * ny, k)?;
        let nd_cut = metrics(&a, &nested_dissection(&a, k)).cut_edges;
        prop_assert!(
            m.cut_edges <= nd_cut,
            "{nx}×{ny} k={k} seed={seed}: ml cut {} > nd cut {nd_cut}",
            m.cut_edges
        );
        let bound = balance_bound(&a, k, &config);
        prop_assert!(
            m.sizes.iter().all(|&s| (s as u64) <= bound),
            "sizes {:?} exceed bound {bound}",
            m.sizes
        );
        prop_assert_eq!(&ml, &multilevel(&a, k, &config), "same seed, same partition");
    }

    /// 3-D grids (anisotropic included): same four properties.
    #[test]
    fn multilevel_on_3d_grids(
        nx in 3usize..12,
        ny in 3usize..12,
        nz in 3usize..12,
        k in 2usize..9,
        seed in 0u64..1000,
        aniso_sel in 0usize..2,
    ) {
        let n = nx * ny * nz;
        prop_assume!(k <= n / 4);
        let aniso = aniso_sel == 1;
        let a = if aniso {
            generators::grid3d_laplacian_aniso(nx, ny, nz, 0.05)
        } else {
            generators::grid3d_laplacian(nx, ny, nz)
        };
        let config = PartitionConfig { seed, ..PartitionConfig::default() };
        let ml = multilevel(&a, k, &config);
        let m = metrics(&a, &ml);
        assert_full_coverage(&m.sizes, n, k)?;
        let nd_cut = metrics(&a, &nested_dissection(&a, k)).cut_edges;
        prop_assert!(
            m.cut_edges <= nd_cut,
            "{nx}×{ny}×{nz} k={k} seed={seed} aniso={aniso}: ml cut {} > nd cut {nd_cut}",
            m.cut_edges
        );
        let bound = balance_bound(&a, k, &config);
        prop_assert!(
            m.sizes.iter().all(|&s| (s as u64) <= bound),
            "sizes {:?} exceed bound {bound}",
            m.sizes
        );
        prop_assert_eq!(&ml, &multilevel(&a, k, &config), "same seed, same partition");
    }

    /// FM refinement alone keeps coverage and balance, and never worsens
    /// the cut of an already-balanced (nested-dissection) partition.
    #[test]
    fn fm_refinement_preserves_coverage_and_balance(
        nx in 4usize..20,
        ny in 4usize..20,
        k in 2usize..7,
        fm_passes in 1usize..6,
        seed in 0u64..1000,
    ) {
        prop_assume!(k <= (nx * ny) / 4);
        let a = generators::grid2d_laplacian(nx, ny);
        let config = PartitionConfig { seed, fm_passes, ..PartitionConfig::default() };
        let mut asg = nested_dissection(&a, k);
        let before = metrics(&a, &asg);
        refine_assignment(&a, &mut asg, k, &config);
        let after = metrics(&a, &asg);
        assert_full_coverage(&after.sizes, nx * ny, k)?;
        // FM never worsens the cut; only *balance repair* may, and repair
        // runs exactly when the input partition exceeds the slack window.
        let wmax = config.max_part_weight((nx * ny) as u64, k);
        if before.sizes.iter().all(|&s| (s as u64) <= wmax) {
            prop_assert!(
                after.cut_edges <= before.cut_edges,
                "refinement worsened the cut of a balanced partition: {} → {}",
                before.cut_edges,
                after.cut_edges
            );
        }
        let nd_max = *before.sizes.iter().max().expect("k ≥ 1") as u64;
        let bound = config.max_part_weight((nx * ny) as u64, k).max(nd_max);
        prop_assert!(
            after.sizes.iter().all(|&s| (s as u64) <= bound),
            "sizes {:?} exceed bound {bound}",
            after.sizes
        );
    }
}

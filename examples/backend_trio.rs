//! One algorithm, three machines: solve the same torn system on the
//! simulated, threaded and work-stealing executors and print the shared
//! report vocabulary side by side.
//!
//! ```sh
//! cargo run --release --example backend_trio
//! ```

use dtm_repro::core::rayon_backend::{self, RayonConfig};
use dtm_repro::core::runtime::{CommonConfig, Termination};
use dtm_repro::core::solver::{self, ComputeModel, DtmConfig};
use dtm_repro::core::threaded::{self, ThreadedConfig};
use dtm_repro::core::SolveReport;
use dtm_repro::graph::evs::{split, EvsOptions};
use dtm_repro::graph::{partition, ElectricGraph, PartitionPlan};
use dtm_repro::simnet::{DelayModel, SimDuration, Topology};
use dtm_repro::sparse::generators;
use std::time::Duration;

fn main() {
    let (side, k) = (16, 4);
    let a = generators::grid2d_random(side, side, 1.0, 2024);
    let b = generators::random_rhs(side * side, 2025);
    let g = ElectricGraph::from_system(a.clone(), b.clone()).expect("symmetric");
    let plan = PartitionPlan::from_assignment(&g, &partition::grid_strips(side, side, k))
        .expect("valid plan");
    let ss = split(&g, &plan, &EvsOptions::default()).expect("valid split");
    let tol = 1e-8;
    let common = || CommonConfig {
        termination: Termination::OracleRms { tol },
        ..Default::default()
    };

    let sim = solver::solve(
        &ss,
        Topology::ring(k).with_delays(&DelayModel::uniform_ms(10.0, 99.0, 7)),
        None,
        &DtmConfig {
            common: common(),
            compute: ComputeModel::Fixed(SimDuration::from_millis_f64(1.0)),
            horizon: SimDuration::from_millis_f64(3_600_000.0),
            ..Default::default()
        },
    )
    .expect("simulated backend");

    let threaded = threaded::solve(
        &ss,
        &ThreadedConfig {
            common: CommonConfig {
                termination: Termination::OracleRms { tol },
                ..ThreadedConfig::default().common
            },
            budget: Duration::from_secs(30),
            ..Default::default()
        },
    )
    .expect("threaded backend");

    let stealing = rayon_backend::solve(
        &ss,
        &RayonConfig {
            common: CommonConfig {
                termination: Termination::OracleRms { tol },
                ..RayonConfig::default().common
            },
            num_threads: 2,
            budget: Duration::from_secs(30),
            ..Default::default()
        },
    )
    .expect("work-stealing backend");

    println!(
        "{:>14} {:>10} {:>12} {:>10} {:>10} {:>12}",
        "backend", "converged", "time [ms]", "solves", "messages", "rms"
    );
    for report in [&sim, &threaded, &stealing] {
        print_row(report);
        assert!(report.converged, "{:?} failed to converge", report.backend);
        let residual = a.residual_norm(&report.solution, &b);
        assert!(residual < 1e-5, "{:?}: residual {residual}", report.backend);
    }
    println!("\nall three executors agree with the direct solution (residual < 1e-5)");
    println!("(simulated time is virtual; threaded/work-stealing are wall-clock)");
}

fn print_row(r: &SolveReport) {
    println!(
        "{:>14} {:>10} {:>12.2} {:>10} {:>10} {:>12.2e}",
        format!("{:?}", r.backend),
        r.converged,
        r.final_time_ms,
        r.total_solves,
        r.total_messages,
        r.final_rms
    );
}

//! DTM on the paper's "terrible" machine: 16 processors in a 4×4 mesh with
//! asymmetric delays between 10 ms and 99 ms (Fig. 11), solving a random
//! sparse SPD system with n = 1089 unknowns, using the *distributed*
//! termination rule (every processor halts itself; no oracle, no barrier).
//!
//! ```sh
//! cargo run --release --example heterogeneous_mesh
//! ```

use dtm_repro::core::solver::{ComputeModel, Termination};
use dtm_repro::simnet::{DelayModel, SimDuration, Topology};
use dtm_repro::sparse::generators;
use dtm_repro::DtmBuilder;

fn main() {
    let side = 33; // n = 1089, one of the paper's sizes
    let a = generators::grid2d_random(side, side, 1.0, 2008);
    let b = generators::random_rhs(side * side, 2009);

    let machine = Topology::mesh(4, 4).with_delays(&DelayModel::uniform_ms(10.0, 99.0, 1108));
    let (lo, hi) = machine.delay_range();
    println!(
        "machine: 4×4 mesh, asymmetric delays {:.0}–{:.0} ms (ratio {:.1}×, asymmetry {:.2})",
        lo.as_millis_f64(),
        hi.as_millis_f64(),
        hi.as_millis_f64() / lo.as_millis_f64(),
        machine.asymmetry()
    );

    let report = DtmBuilder::new(a.clone(), b.clone())
        .grid_blocks(side, side, 4, 4)
        .network(machine)
        .compute(ComputeModel::Fixed(SimDuration::from_millis_f64(1.0)))
        // Fully distributed stop: each processor breaks on its own
        // (Table 1 step 3.3) — nothing global anywhere.
        .termination(Termination::LocalDelta {
            tol: 1e-9,
            patience: 5,
        })
        .horizon(SimDuration::from_millis_f64(600_000.0))
        .solve()
        .expect("valid problem");

    println!(
        "stopped via {:?} at t = {:.0} ms (simulated)",
        report.stop, report.final_time_ms
    );
    println!(
        "{} local solves, {} N2N messages, {} coalesced batches",
        report.total_solves, report.total_messages, report.coalesced_batches
    );
    println!(
        "final RMS error {:.2e}, residual {:.2e}",
        report.final_rms,
        a.residual_norm(&report.solution, &b)
    );
    assert!(report.final_rms < 1e-5);
}

//! Streaming multi-RHS solves: factor once, serve batches forever.
//!
//! The paper's §5 observation — the local coefficient matrices are
//! constant, so "only once factorization should be done at the beginning"
//! — means additional right-hand sides are nearly free. This example opens
//! a [`SolveSession`](dtm_repro::core::SolveSession), then streams three
//! batches of right-hand sides through the *same* factorizations and wave
//! routes: only the block wave exchange re-runs per batch.
//!
//! ```sh
//! cargo run --release --example streaming_session
//! ```

use dtm_repro::core::solver::Termination;
use dtm_repro::sparse::generators;
use dtm_repro::DtmBuilder;

fn main() {
    // A 2-D grid Laplacian torn into 2×2 blocks on a 4-processor mesh.
    let side = 12;
    let n = side * side;
    let a = generators::grid2d_laplacian(side, side);
    let problem = DtmBuilder::new(a.clone(), vec![1.0; n])
        .grid_blocks(side, side, 2, 2)
        .termination(Termination::OracleRms { tol: 1e-8 })
        .build()
        .expect("valid SPD problem");

    // Factor-once happens here — the only expensive step in the program.
    let mut session = problem.session().expect("factors");

    println!(
        "{:>6} {:>6} {:>12} {:>14} {:>12}",
        "batch", "K", "sim t [ms]", "sim t/RHS [ms]", "worst rms"
    );
    for (batch, k) in [1usize, 4, 16].into_iter().enumerate() {
        for c in 0..k {
            let b = generators::random_rhs(n, (batch * 100 + c) as u64);
            session.push_rhs(&b).expect("dimension ok");
        }
        // Only the wave exchange runs: K columns share each substitution.
        let report = session.solve_batch().expect("converges");
        assert!(report.converged, "batch {batch} must converge");
        assert_eq!(report.n_rhs, k);
        for (c, x) in report.solutions.iter().enumerate() {
            let b = generators::random_rhs(n, (batch * 100 + c) as u64);
            let residual = a.residual_norm(x, &b);
            assert!(
                residual < 1e-5,
                "batch {batch} col {c}: residual {residual}"
            );
        }
        println!(
            "{:>6} {:>6} {:>12.1} {:>14.2} {:>12.2e}",
            batch,
            k,
            report.final_time_ms,
            report.time_per_rhs_ms(),
            report.final_rms
        );
    }
    println!(
        "\n{} RHS served across {} batches over one factorization — \
         the batched/streaming path to serving traffic",
        session.rhs_solved(),
        session.batches_solved()
    );
}

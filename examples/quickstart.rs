//! Quickstart: solve a sparse SPD system with DTM in a dozen lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dtm_repro::core::solver::Termination;
use dtm_repro::sparse::generators;
use dtm_repro::DtmBuilder;

fn main() {
    // A 2-D grid system with random conductances: n = 225 unknowns.
    let a = generators::grid2d_random(15, 15, 1.0, 42);
    let b = generators::random_rhs(a.n_rows(), 43);

    // Tear it into 2×2 blocks, run DTM on a 4-processor mesh (1 ms links).
    let report = DtmBuilder::new(a.clone(), b.clone())
        .grid_blocks(15, 15, 2, 2)
        .termination(Termination::OracleRms { tol: 1e-8 })
        .solve()
        .expect("valid SPD problem");

    println!(
        "converged = {} after {} local solves / {} messages",
        report.converged, report.total_solves, report.total_messages
    );
    println!(
        "simulated time {:.1} ms, final RMS error {:.2e}",
        report.final_time_ms, report.final_rms
    );
    let residual = a.residual_norm(&report.solution, &b);
    println!("residual ‖b − Ax‖ = {residual:.2e}");
    assert!(report.converged && residual < 1e-5);
}

//! DTM on real OS threads: genuine asynchrony with crossbeam channels and
//! injected heterogeneous link delays — no simulation, no barrier, no
//! global clock.
//!
//! ```sh
//! cargo run --release --example threaded_async
//! ```

use dtm_repro::core::runtime::{CommonConfig, Termination};
use dtm_repro::core::threaded::{self, ThreadedConfig};
use dtm_repro::graph::evs::{split, EvsOptions};
use dtm_repro::graph::{partition, ElectricGraph, PartitionPlan};
use dtm_repro::simnet::{DelayModel, Topology};
use dtm_repro::sparse::generators;
use std::time::Duration;

fn main() {
    let side = 20;
    let k = 4; // four worker threads
    let a = generators::grid2d_random(side, side, 1.0, 77);
    let b = generators::random_rhs(side * side, 78);
    let g = ElectricGraph::from_system(a.clone(), b.clone()).expect("symmetric");
    let plan = PartitionPlan::from_assignment(&g, &partition::grid_strips(side, side, k))
        .expect("valid plan");
    let ss = split(&g, &plan, &EvsOptions::default()).expect("valid split");

    // Inject 10–99 "ms" delays scaled down 1000× (so they become 10–99 µs
    // of real sleeping) through the router thread.
    let machine = Topology::ring(k).with_delays(&DelayModel::uniform_ms(10.0, 99.0, 5));
    let config = ThreadedConfig {
        common: CommonConfig {
            termination: Termination::OracleRms { tol: 1e-8 },
            ..ThreadedConfig::default().common
        },
        budget: Duration::from_secs(30),
        delay_topology: Some(machine),
        delay_scale: 1e-3,
        ..Default::default()
    };

    let report = threaded::solve(&ss, &config).expect("threads run");
    println!(
        "{} threads converged = {} in {:.1} ms wall-clock",
        k, report.converged, report.final_time_ms
    );
    println!(
        "{} local solves, {} messages, final RMS {:.2e}, residual {:.2e}",
        report.total_solves,
        report.total_messages,
        report.final_rms,
        a.residual_norm(&report.solution, &b)
    );
    assert!(report.converged);
}

//! The paper's running example, end to end: system (3.2) → electric graph
//! (Fig. 3) → EVS at {V2, V3} (Example 4.1, Fig. 5) → DTLPs with the
//! Example 5.1 impedances and delays (Fig. 7) → asynchronous DTM run
//! (Fig. 8), printing every intermediate object with the paper's numbers.
//!
//! ```sh
//! cargo run --release --example circuit_tearing
//! ```

use dtm_repro::core::impedance::ImpedancePolicy;
use dtm_repro::core::runtime::CommonConfig;
use dtm_repro::core::solver::{self, ComputeModel, DtmConfig, Termination};
use dtm_repro::graph::evs::{paper_example_shares, split, EvsOptions};
use dtm_repro::graph::{ElectricGraph, PartitionPlan};
use dtm_repro::simnet::{Link, SimDuration, Topology};
use dtm_repro::sparse::generators;

fn main() {
    // --- §3: the electric graph of (3.2). -----------------------------
    let (a, b) = generators::paper_example_system();
    println!("system (3.2): A (4x4), b = {b:?}");
    let graph = ElectricGraph::from_system(a.clone(), b.clone()).expect("symmetric");
    for v in 0..graph.n() {
        println!(
            "  V{}: weight {}, source {}",
            v + 1,
            graph.vertex_weight(v),
            graph.source(v)
        );
    }

    // --- §4: EVS at the boundary {V2, V3}. -----------------------------
    let plan = PartitionPlan::from_assignment(&graph, &[0, 0, 1, 1]).expect("valid");
    println!(
        "\nEVS boundary: {:?} (split vertices)",
        plan.split_vertices().map(|v| v + 1).collect::<Vec<_>>()
    );
    let options = EvsOptions {
        explicit: paper_example_shares(), // the paper's exact 2.5/3.5 … split
        ..Default::default()
    };
    let ss = split(&graph, &plan, &options).expect("valid split");
    for sd in &ss.subdomains {
        println!(
            "subsystem ({}): {} unknowns, {} ports, rhs {:?}",
            if sd.part == 0 { "4.1" } else { "4.2" },
            sd.n_local(),
            sd.n_ports(),
            sd.rhs
        );
    }

    // --- §5: DTLPs + the two-processor machine of Fig. 7. --------------
    let topo = Topology::from_links(
        2,
        vec![
            Link {
                src: 0,
                dst: 1,
                delay: SimDuration::from_micros_f64(6.7),
            },
            Link {
                src: 1,
                dst: 0,
                delay: SimDuration::from_micros_f64(2.9),
            },
        ],
    );
    println!("\nmachine: P_A → P_B = 6.7 µs, P_B → P_A = 2.9 µs (asymmetric)");
    println!("DTLP impedances: Z₂ = 0.2, Z₃ = 0.1 (Example 5.1)");

    // --- run DTM (Fig. 8). ----------------------------------------------
    let config = DtmConfig {
        common: CommonConfig {
            impedance: ImpedancePolicy::PerDtlp(vec![0.2, 0.1]),
            termination: Termination::OracleRms { tol: 1e-10 },
            ..Default::default()
        },
        compute: ComputeModel::Zero,
        horizon: SimDuration::from_millis_f64(5.0),
        ..Default::default()
    };
    let report = solver::solve(&ss, topo, None, &config).expect("paper example runs");
    let exact = dtm_repro::sparse::DenseCholesky::factor_csr(&a)
        .expect("SPD")
        .solve(&b);
    println!(
        "\nDTM converged = {} at t = {:.1} µs ({} local solves)",
        report.converged,
        report.final_time_ms * 1000.0,
        report.total_solves
    );
    println!("solution  {:?}", report.solution);
    println!("exact     {exact:?}");
    assert!(report.converged);
}

//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API
//! (`lock()` returns the guard directly; poisoning is ignored, matching
//! parking_lot's no-poisoning design).

use std::sync::{self, RwLockReadGuard, RwLockWriteGuard};
// Real parking_lot has its own guard type; this stand-in hands out std's.
pub use std::sync::MutexGuard;

/// Mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RwLock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}

//! Shim MPMC channel matching the vendored `crossbeam::channel` API
//! surface used by this workspace: `unbounded`, cloneable endpoints,
//! `send`/`recv`/`try_recv`/`recv_timeout` with the same error types.
//!
//! Payloads live in an untyped-to-the-scheduler side queue; the
//! scheduler sees only a queue of message *identity* fingerprints
//! (derived from the sender's history at send time) plus endpoint
//! counts. `recv_timeout` is always schedulable: granting it with an
//! empty queue *is* the timeout branch, so "message arrives first" vs
//! "timeout fires first" falls out of the schedule choice with no clock.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex as StdMutex, PoisonError};
use std::time::Duration;

use crate::exec::{self, mix, ObjSt, Op, State};

const SALT_SEND: u64 = 0x5eed;
const SALT_RECV: u64 = 0x4ecf;

/// Sending half of a disconnected channel (message handed back).
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// `recv` on an empty, fully disconnected channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

struct Chan<T> {
    exec: Arc<exec::Exec>,
    id: usize,
    payloads: StdMutex<VecDeque<T>>,
}

impl<T> Chan<T> {
    fn pop_payload(&self) -> T {
        self.payloads
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
            .expect("payload queue desynced from scheduler id queue")
    }
}

pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Shim for `crossbeam::channel::unbounded`.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (exec, _) = exec::current();
    let id = exec.register_object(ObjSt::Channel {
        ids: VecDeque::new(),
        senders: 1,
        receivers: 1,
    });
    let chan = Arc::new(Chan {
        exec,
        id,
        payloads: StdMutex::new(VecDeque::new()),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

fn endpoint_delta(chan_exec: &exec::Exec, id: usize, senders: isize, receivers: isize) {
    // Endpoint counts change silently (no yield): clone/drop are not
    // synchronization events; their effect is observed at the next
    // recv/send decision, which is where disconnect matters.
    let mut st = chan_exec.st();
    if let ObjSt::Channel {
        senders: s,
        receivers: r,
        ..
    } = &mut st.objects[id]
    {
        *s = s
            .checked_add_signed(senders)
            .expect("sender count underflow");
        *r = r
            .checked_add_signed(receivers)
            .expect("receiver count underflow");
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        endpoint_delta(&self.chan.exec, self.chan.id, 1, 0);
        Self {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        endpoint_delta(&self.chan.exec, self.chan.id, -1, 0);
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        endpoint_delta(&self.chan.exec, self.chan.id, 0, 1);
        Self {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        endpoint_delta(&self.chan.exec, self.chan.id, 0, -1);
    }
}

impl<T> Sender<T> {
    pub fn send(&self, v: T) -> Result<(), SendError<T>> {
        let (_, me) = exec::current();
        let id = self.chan.id;
        let accepted = self
            .chan
            .exec
            .op(me, Op::Send(id), &format!("send c{id}"), |st| {
                let State {
                    threads, objects, ..
                } = st;
                let hist = threads[me].history;
                match &mut objects[id] {
                    ObjSt::Channel { ids, receivers, .. } => {
                        if *receivers == 0 {
                            return false;
                        }
                        // Message identity = sender's history at send
                        // time: receivers that consume different
                        // messages (or the same messages in different
                        // orders) diverge in their own fingerprints.
                        let msg_id = mix(SALT_SEND, hist);
                        ids.push_back(msg_id);
                        threads[me].history = mix(hist, msg_id);
                        true
                    }
                    other => unreachable!("object {id} is not a channel: {other:?}"),
                }
            });
        if accepted {
            self.chan
                .payloads
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(v);
            Ok(())
        } else {
            Err(SendError(v))
        }
    }
}

/// What the scheduler-side half of a receive produced.
enum RecvOutcome {
    Got,
    Empty,
    Disconnected,
}

impl<T> Receiver<T> {
    fn recv_op(&self, op_kind: Op, desc: &str) -> RecvOutcome {
        let (_, me) = exec::current();
        let id = self.chan.id;
        self.chan.exec.op(me, op_kind, desc, |st| {
            let State {
                threads, objects, ..
            } = st;
            let hist = threads[me].history;
            match &mut objects[id] {
                ObjSt::Channel { ids, senders, .. } => match ids.pop_front() {
                    Some(msg_id) => {
                        threads[me].history = mix(hist, mix(SALT_RECV, msg_id));
                        RecvOutcome::Got
                    }
                    None if *senders == 0 => RecvOutcome::Disconnected,
                    None => RecvOutcome::Empty,
                },
                other => unreachable!("object {id} is not a channel: {other:?}"),
            }
        })
    }

    /// Blocking receive: schedulable only once a message is queued or
    /// every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let id = self.chan.id;
        match self.recv_op(Op::Recv(id), &format!("recv c{id}")) {
            RecvOutcome::Got => Ok(self.chan.pop_payload()),
            RecvOutcome::Disconnected => Err(RecvError),
            RecvOutcome::Empty => unreachable!("blocking recv granted on empty channel"),
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let id = self.chan.id;
        match self.recv_op(Op::TryRecv(id), &format!("try_recv c{id}")) {
            RecvOutcome::Got => Ok(self.chan.pop_payload()),
            RecvOutcome::Disconnected => Err(TryRecvError::Disconnected),
            RecvOutcome::Empty => Err(TryRecvError::Empty),
        }
    }

    /// The duration is ignored: an empty queue at grant time *is* the
    /// timeout. Pair with [`crate::checkpoint`] at the poll-loop top so
    /// futile timeout iterations dedup instead of unrolling forever.
    pub fn recv_timeout(&self, _timeout: Duration) -> Result<T, RecvTimeoutError> {
        let id = self.chan.id;
        match self.recv_op(Op::RecvTimeout(id), &format!("recv_timeout c{id}")) {
            RecvOutcome::Got => Ok(self.chan.pop_payload()),
            RecvOutcome::Disconnected => Err(RecvTimeoutError::Disconnected),
            RecvOutcome::Empty => Err(RecvTimeoutError::Timeout),
        }
    }
}

//! Shim synchronization primitives: drop-in stand-ins for
//! `std::sync::atomic::*`, `parking_lot::Mutex` (`lock()` returns the
//! guard directly), and a std-style `Condvar`, each of which yields to
//! the scheduler at every operation.
//!
//! Memory model: sequential consistency. Every operation is a global
//! linearization point and `Ordering` arguments are accepted but
//! ignored — the checker explores *interleavings*, not weak-memory
//! reorderings. That is the right fidelity for this project: the
//! protocols under test are documented to require only SC-per-location
//! plus the happens-before edges channels already give them.

pub use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError};

use crate::exec::{self, mix, ObjSt, Op, Pending, State, Tid};

// Salts folded into history hashes so different op kinds on the same
// value never collide.
const SALT_LOAD: u64 = 0x6c6f;
const SALT_STORE: u64 = 0x7374;
const SALT_RMW: u64 = 0x726d;
const SALT_LOCK: u64 = 0x6c6b;

fn fold_history(st: &mut State, me: Tid, salt: u64, obj: usize, v: u64) {
    let h = st.threads[me].history;
    st.threads[me].history = mix(h, mix(mix(salt, obj as u64), v));
}

fn atomic_cell(st: &mut State, id: usize) -> &mut u64 {
    match &mut st.objects[id] {
        ObjSt::Atomic { value } => value,
        other => unreachable!("object {id} is not an atomic: {other:?}"),
    }
}

macro_rules! int_atomic {
    ($name:ident, $ty:ty) => {
        /// Model-checked stand-in for the `std::sync::atomic` type of the
        /// same name. `Ordering` is accepted for source compatibility and
        /// ignored (see module docs).
        pub struct $name {
            exec: Arc<exec::Exec>,
            id: usize,
        }

        impl $name {
            #[allow(clippy::new_without_default)]
            pub fn new(v: $ty) -> Self {
                let (exec, _) = exec::current();
                let id = exec.register_object(ObjSt::Atomic { value: v as u64 });
                Self { exec, id }
            }

            fn op<R>(&self, op_kind: Op, desc: &str, f: impl FnOnce(&mut State, Tid) -> R) -> R {
                let (_, me) = exec::current();
                self.exec.op(me, op_kind, desc, |st| f(st, me))
            }

            pub fn load(&self, _o: Ordering) -> $ty {
                let id = self.id;
                self.op(Op::AtomicLoad(id), &format!("load a{id}"), |st, me| {
                    let v = *atomic_cell(st, id);
                    fold_history(st, me, SALT_LOAD, id, v);
                    v as $ty
                })
            }

            pub fn store(&self, v: $ty, _o: Ordering) {
                let id = self.id;
                self.op(
                    Op::AtomicStore(id),
                    &format!("store a{id} = {v}"),
                    |st, me| {
                        *atomic_cell(st, id) = v as u64;
                        fold_history(st, me, SALT_STORE, id, v as u64);
                    },
                )
            }

            fn rmw(&self, desc: &str, f: impl FnOnce($ty) -> $ty) -> $ty {
                let id = self.id;
                self.op(Op::AtomicRmw(id), desc, |st, me| {
                    let cell = atomic_cell(st, id);
                    let old = *cell as $ty;
                    *cell = f(old) as u64;
                    fold_history(st, me, SALT_RMW, id, old as u64);
                    old
                })
            }

            pub fn swap(&self, v: $ty, _o: Ordering) -> $ty {
                self.rmw(&format!("swap a{}", self.id), |_| v)
            }

            pub fn fetch_add(&self, v: $ty, _o: Ordering) -> $ty {
                self.rmw(&format!("fetch_add a{}", self.id), |x| x.wrapping_add(v))
            }

            pub fn fetch_sub(&self, v: $ty, _o: Ordering) -> $ty {
                self.rmw(&format!("fetch_sub a{}", self.id), |x| x.wrapping_sub(v))
            }

            pub fn fetch_max(&self, v: $ty, _o: Ordering) -> $ty {
                self.rmw(&format!("fetch_max a{}", self.id), |x| x.max(v))
            }

            pub fn compare_exchange(
                &self,
                expect: $ty,
                new: $ty,
                _ok: Ordering,
                _err: Ordering,
            ) -> Result<$ty, $ty> {
                let id = self.id;
                self.op(Op::AtomicRmw(id), &format!("cas a{id}"), |st, me| {
                    let cell = atomic_cell(st, id);
                    let old = *cell as $ty;
                    let hit = old == expect;
                    if hit {
                        *cell = new as u64;
                    }
                    fold_history(st, me, SALT_RMW, id, mix(old as u64, hit as u64));
                    if hit {
                        Ok(old)
                    } else {
                        Err(old)
                    }
                })
            }

            pub fn compare_exchange_weak(
                &self,
                expect: $ty,
                new: $ty,
                ok: Ordering,
                err: Ordering,
            ) -> Result<$ty, $ty> {
                // No spurious failures: weak == strong under this model.
                self.compare_exchange(expect, new, ok, err)
            }
        }
    };
}

int_atomic!(AtomicUsize, usize);
int_atomic!(AtomicU64, u64);
int_atomic!(AtomicU32, u32);
int_atomic!(AtomicI64, i64);
int_atomic!(AtomicU8, u8);

/// Model-checked stand-in for `std::sync::atomic::AtomicBool`.
pub struct AtomicBool {
    inner: AtomicU8,
}

impl AtomicBool {
    #[allow(clippy::new_without_default)]
    pub fn new(v: bool) -> Self {
        Self {
            inner: AtomicU8::new(v as u8),
        }
    }

    pub fn load(&self, o: Ordering) -> bool {
        self.inner.load(o) != 0
    }

    pub fn store(&self, v: bool, o: Ordering) {
        self.inner.store(v as u8, o);
    }

    pub fn swap(&self, v: bool, o: Ordering) -> bool {
        self.inner.swap(v as u8, o) != 0
    }

    pub fn compare_exchange(
        &self,
        expect: bool,
        new: bool,
        ok: Ordering,
        err: Ordering,
    ) -> Result<bool, bool> {
        self.inner
            .compare_exchange(expect as u8, new as u8, ok, err)
            .map(|v| v != 0)
            .map_err(|v| v != 0)
    }
}

/// Acquire `id` for `me`: record the holder and exchange fingerprints —
/// the thread's history absorbs the protected content (it can now
/// observe it) and the content becomes a function of the thread's
/// pre-acquire history (it may now be rewritten by it). This is what
/// makes lock-protected data visible to state dedup without hashing the
/// data itself.
pub(crate) fn acquire_mutex(st: &mut State, me: Tid, id: usize) {
    let hist = st.threads[me].history;
    let content = match &mut st.objects[id] {
        ObjSt::Mutex { holder, content } => {
            debug_assert!(holder.is_none(), "lock grant while held");
            *holder = Some(me);
            let c = *content;
            // Replace, don't fold: re-acquisition by a thread whose
            // history hasn't changed (a polling loop under
            // `checkpoint`) is idempotent, so futile lock-and-look
            // iterations dedup instead of unrolling forever. Earlier
            // writers still propagate — each acquirer's history absorbs
            // the content it displaced (below), so the acquisition chain
            // lives on in the thread fingerprints. Residual obligation
            // (same as checkpoint's): what a thread writes under a lock
            // must be a deterministic function of its history at
            // acquire time; `trace_value` distinguishing inputs first
            // if not.
            *content = mix(SALT_LOCK, hist);
            c
        }
        other => unreachable!("object {id} is not a mutex: {other:?}"),
    };
    st.threads[me].history = mix(hist, mix(SALT_LOCK, content));
}

struct Unlocker {
    exec: Arc<exec::Exec>,
    id: usize,
}

impl Drop for Unlocker {
    // Unlock is silent (no yield): its effect is observed by other
    // threads only at their next decision point, which is equivalent to
    // yielding here but halves the schedule depth.
    fn drop(&mut self) {
        let mut st = self.exec.st();
        if let ObjSt::Mutex { holder, .. } = &mut st.objects[self.id] {
            *holder = None;
        }
    }
}

/// Model-checked stand-in for `parking_lot::Mutex`: `lock()` returns the
/// guard directly (no `Result`).
pub struct Mutex<T> {
    exec: Arc<exec::Exec>,
    id: usize,
    data: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(v: T) -> Self {
        let (exec, _) = exec::current();
        let id = exec.register_object(ObjSt::Mutex {
            holder: None,
            content: 0,
        });
        Self {
            exec,
            id,
            data: std::sync::Mutex::new(v),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let (_, me) = exec::current();
        let id = self.id;
        self.exec
            .op(me, Op::Lock(id), &format!("lock m{id}"), |st| {
                acquire_mutex(st, me, id);
            });
        MutexGuard {
            // The real lock is uncontended by construction: the scheduler
            // grants `Lock` only while `holder` is `None`.
            inner: self.data.lock().unwrap_or_else(PoisonError::into_inner),
            lock: self,
            _unlocker: Unlocker {
                exec: Arc::clone(&self.exec),
                id,
            },
        }
    }

    pub fn into_inner(self) -> T {
        self.data
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard for the shim [`Mutex`]. Field order matters: the inner std
/// guard is released *before* `unlocker` flips the scheduler-visible
/// lock bit, so no thread can be granted the lock while the data is
/// still borrowed.
pub struct MutexGuard<'a, T> {
    inner: std::sync::MutexGuard<'a, T>,
    lock: &'a Mutex<T>,
    _unlocker: Unlocker,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Model-checked stand-in for `std::sync::Condvar` (std-style `wait`
/// consumes and returns the guard). A thread parked in `wait` is
/// unschedulable until a notify moves it to the lock queue — so a lost
/// wakeup shows up as a detected deadlock, not a hang.
pub struct Condvar {
    exec: Arc<exec::Exec>,
    id: usize,
}

impl Condvar {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        let (exec, _) = exec::current();
        let id = exec.register_object(ObjSt::Condvar {
            waiters: std::collections::VecDeque::new(),
        });
        Self { exec, id }
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let (_, me) = exec::current();
        let lock = guard.lock;
        let mutex_id = lock.id;
        let cv_id = self.id;
        // Dropping the guard releases the mutex silently; no other
        // thread can run before we park below, so release-and-enqueue is
        // atomic exactly like the real primitive.
        drop(guard);
        self.exec
            .park_with(me, Pending::CondWait { mutex: mutex_id }, |st| {
                if let ObjSt::Condvar { waiters } = &mut st.objects[cv_id] {
                    waiters.push_back(me);
                }
            });
        // Granted again only after a notify re-armed us as `Op(Lock)` and
        // the scheduler granted the (free) mutex: perform the acquire.
        {
            let mut st = self.exec.st();
            st.trace
                .push(format!("t{me}: relock m{mutex_id} after wait cv{cv_id}"));
            acquire_mutex(&mut st, me, mutex_id);
        }
        MutexGuard {
            inner: lock.data.lock().unwrap_or_else(PoisonError::into_inner),
            lock,
            _unlocker: Unlocker {
                exec: Arc::clone(&lock.exec),
                id: mutex_id,
            },
        }
    }

    fn notify(&self, count: usize, op_kind: Op, desc: &str) {
        let (_, me) = exec::current();
        let cv_id = self.id;
        self.exec.op(me, op_kind, desc, |st| {
            for _ in 0..count {
                let waiter = match &mut st.objects[cv_id] {
                    ObjSt::Condvar { waiters } => waiters.pop_front(),
                    other => unreachable!("object {cv_id} is not a condvar: {other:?}"),
                };
                let Some(w) = waiter else { break };
                let Pending::CondWait { mutex } = st.threads[w].pending else {
                    unreachable!("condvar waiter t{w} not parked in wait")
                };
                st.threads[w].pending = Pending::Op(Op::Lock(mutex));
            }
        });
    }

    pub fn notify_one(&self) {
        self.notify(
            1,
            Op::NotifyOne(self.id),
            &format!("notify_one cv{}", self.id),
        );
    }

    pub fn notify_all(&self) {
        self.notify(
            usize::MAX,
            Op::NotifyAll(self.id),
            &format!("notify_all cv{}", self.id),
        );
    }
}

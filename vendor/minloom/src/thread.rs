//! Shim `thread::spawn` / `JoinHandle` producing controlled threads.

use std::any::Any;
use std::sync::{Arc, Mutex as StdMutex, PoisonError};

use crate::exec::{self, mix, Op, Pending};

const SALT_JOIN: u64 = 0x9017;
const SALT_FIN: u64 = 0xf1a9;

/// Shim for `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    exec: Arc<exec::Exec>,
    tid: usize,
    result: Arc<StdMutex<Option<T>>>,
}

/// Shim for `std::thread::spawn`. Registration is silent; the new thread
/// becomes schedulable at the next decision point.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (exec, _) = exec::current();
    let tid = exec.register_thread();
    let result = Arc::new(StdMutex::new(None));
    let slot = Arc::clone(&result);
    exec::spawn_controlled(&exec, tid, move || {
        let v = f();
        *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
    });
    JoinHandle { exec, tid, result }
}

impl<T> JoinHandle<T> {
    /// Blocking join: schedulable only once the target has exited. Folds
    /// the target's final history into the joiner's (join is a
    /// happens-before edge: everything the target did is now observable).
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        let (_, me) = exec::current();
        let target = self.tid;
        self.exec
            .op(me, Op::Join(target), &format!("join t{target}"), |st| {
                let th = st.threads[target].history;
                let hist = st.threads[me].history;
                st.threads[me].history = mix(hist, mix(SALT_JOIN, th));
            });
        match self
            .result
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            Some(v) => Ok(v),
            // Unreachable in practice: a real panic in the target aborts
            // the whole schedule before the join is granted.
            None => Err(Box::new("minloom: joined thread panicked")),
        }
    }

    /// Non-blocking completion probe (an observation op: two schedules
    /// where it answers differently are distinct states).
    pub fn is_finished(&self) -> bool {
        let (_, me) = exec::current();
        let target = self.tid;
        self.exec.op(
            me,
            Op::IsFinished(target),
            &format!("is_finished t{target}"),
            |st| {
                let fin = st.threads[target].pending == Pending::Exited;
                let hist = st.threads[me].history;
                st.threads[me].history = mix(hist, mix(SALT_FIN, mix(target as u64, fin as u64)));
                fin
            },
        )
    }
}

/// Shim for `std::thread::yield_now`: a pure scheduling point with no
/// effect — useful for adding an explicit interleaving opportunity.
pub fn yield_now() {
    let (exec, me) = exec::current();
    exec.op(me, Op::Yield, "yield", |_| {});
}

//! Scheduler core: controlled threads, the DFS over schedules, and the
//! state fingerprinting that makes the search terminate.
//!
//! One schedule = one complete run of the model closure under a fixed
//! sequence of scheduling decisions. Controlled threads are real OS
//! threads that hand the single execution slice back to the controller at
//! every *yield point* (each shim-primitive operation); the controller
//! picks which parked thread performs its pending operation next. The
//! controller replays a recorded decision prefix, extends it at the
//! frontier depth-first, and backtracks — classic stateless model checking
//! in the CHESS mold, with two refinements:
//!
//! * **Preemption bounding** — switching away from a thread that could
//!   have kept running costs one unit of a configurable budget; forced
//!   switches (the running thread blocked or exited) are free. Most
//!   concurrency bugs need only 1–2 preemptions, so a small bound
//!   explores the high-yield schedules at a fraction of the cost.
//! * **State-hash deduplication** — at every fresh decision point the
//!   visible state (per-thread continuation fingerprints + shim-object
//!   contents) is hashed; a state already explored with at least the
//!   current preemption budget is pruned. Continuations are fingerprinted
//!   by a running *history hash* folded over every value the thread has
//!   observed or produced, which [`crate::checkpoint`] can reset to a
//!   caller-supplied digest of the thread's live locals so that futile
//!   loop iterations (e.g. timeout polling) revisit identical states and
//!   prune instead of unrolling forever.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

pub(crate) type Tid = usize;
pub(crate) type ObjId = usize;

/// Panic payload used to unwind controlled threads when a schedule is
/// abandoned (violation found elsewhere, state pruned, or depth exceeded).
pub(crate) struct AbortSchedule;

/// A pending shim operation: what a parked thread will do when granted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    AtomicLoad(ObjId),
    AtomicStore(ObjId),
    AtomicRmw(ObjId),
    Lock(ObjId),
    Send(ObjId),
    Recv(ObjId),
    RecvTimeout(ObjId),
    TryRecv(ObjId),
    NotifyOne(ObjId),
    NotifyAll(ObjId),
    Join(Tid),
    IsFinished(Tid),
    Yield,
}

/// Where a controlled thread currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pending {
    /// Spawned; ready to begin its first slice.
    Start,
    /// Parked at an operation, performed when next granted.
    Op(Op),
    /// Blocked in `Condvar::wait`; unschedulable until notified.
    CondWait { mutex: ObjId },
    /// Holds the execution slice (between a grant and the next park).
    Running,
    /// Done (returned or unwound).
    Exited,
}

/// Scheduler-visible state of one shim object.
#[derive(Debug)]
pub(crate) enum ObjSt {
    /// Value stored as raw bits.
    Atomic { value: u64 },
    /// Lock bit plus an order-sensitive content fingerprint (the guarded
    /// data itself lives in the shim, untyped to the scheduler).
    Mutex { holder: Option<Tid>, content: u64 },
    /// FIFO wait queue.
    Condvar { waiters: VecDeque<Tid> },
    /// Message *identity* fingerprints (payloads live in the shim) plus
    /// endpoint counts for disconnect semantics.
    Channel {
        ids: VecDeque<u64>,
        senders: usize,
        receivers: usize,
    },
}

#[derive(Debug)]
pub(crate) struct ThreadSt {
    pub pending: Pending,
    /// Running fingerprint of everything this thread has observed or
    /// produced — a proxy for its continuation (see module docs).
    pub history: u64,
}

pub(crate) struct State {
    pub threads: Vec<ThreadSt>,
    pub objects: Vec<ObjSt>,
    /// Which controlled thread holds the execution slice; `None` while
    /// the controller decides.
    pub running: Option<Tid>,
    /// Abandon the schedule: parked threads unwind with [`AbortSchedule`].
    pub abort: bool,
    /// First assertion failure (or deadlock) observed this schedule.
    pub violation: Option<String>,
    /// Granted operations, in order — the counterexample schedule.
    pub trace: Vec<String>,
    pub os_handles: Vec<std::thread::JoinHandle<()>>,
}

/// One model execution: the shared handshake between the controller and
/// its controlled threads.
pub(crate) struct Exec {
    pub state: Mutex<State>,
    pub cv: Condvar,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Exec>, Tid)>> =
        const { std::cell::RefCell::new(None) };
}

/// The calling thread's execution context.
///
/// # Panics
/// Panics when called outside a controlled thread — shim primitives only
/// work inside a [`crate::Builder::explore`] run.
pub(crate) fn current() -> (Arc<Exec>, Tid) {
    CURRENT
        .with(|c| c.borrow().clone())
        .expect("minloom primitive used outside a minloom model run")
}

/// SplitMix64-style mixer: order-sensitive fold of `v` into `h`.
pub(crate) fn mix(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn payload_to_string(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Exec {
    pub(crate) fn new() -> Self {
        Self {
            state: Mutex::new(State {
                threads: Vec::new(),
                objects: Vec::new(),
                running: None,
                abort: false,
                violation: None,
                trace: Vec::new(),
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Poison-tolerant state lock (threads unwind on purpose during
    /// schedule teardown, and a poisoned mutex carries no broken state
    /// here — every mutation is complete before any panic point).
    pub(crate) fn st(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn register_object(&self, obj: ObjSt) -> ObjId {
        let mut st = self.st();
        st.objects.push(obj);
        st.objects.len() - 1
    }

    pub(crate) fn register_thread(&self) -> Tid {
        let mut st = self.st();
        st.threads.push(ThreadSt {
            pending: Pending::Start,
            history: 0,
        });
        st.threads.len() - 1
    }

    /// Park the calling thread at `pending` (running `before` under the
    /// same critical section, for atomic release-and-wait shapes), hand
    /// the slice to the controller, and block until granted again.
    pub(crate) fn park_with(&self, tid: Tid, pending: Pending, before: impl FnOnce(&mut State)) {
        let mut st = self.st();
        if st.abort {
            drop(st);
            panic::panic_any(AbortSchedule);
        }
        before(&mut st);
        st.threads[tid].pending = pending;
        st.running = None;
        self.cv.notify_all();
        loop {
            if st.abort {
                drop(st);
                panic::panic_any(AbortSchedule);
            }
            if st.running == Some(tid) {
                st.threads[tid].pending = Pending::Running;
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Park at `op`; once granted, perform `f` on the state (the granted
    /// thread is the only one running, so `f` is the op's linearization
    /// point) and record `desc` in the schedule trace.
    pub(crate) fn op<R>(&self, tid: Tid, op: Op, desc: &str, f: impl FnOnce(&mut State) -> R) -> R {
        self.park_with(tid, Pending::Op(op), |_| {});
        let mut st = self.st();
        st.trace.push(format!("t{tid}: {desc}"));
        f(&mut st)
    }
}

/// Spawn the OS thread backing controlled thread `tid`. The body waits
/// for its first grant, runs `f` under `catch_unwind`, then marks itself
/// exited (recording a violation if `f` panicked with anything other
/// than the schedule-abort payload).
pub(crate) fn spawn_controlled(exec: &Arc<Exec>, tid: Tid, f: impl FnOnce() + Send + 'static) {
    let exec2 = Arc::clone(exec);
    let handle = std::thread::Builder::new()
        .name(format!("minloom-t{tid}"))
        .spawn(move || {
            // First grant (the `Start` pending op).
            {
                let mut st = exec2.st();
                loop {
                    if st.abort {
                        st.threads[tid].pending = Pending::Exited;
                        st.running = None;
                        exec2.cv.notify_all();
                        return;
                    }
                    if st.running == Some(tid) {
                        st.threads[tid].pending = Pending::Running;
                        break;
                    }
                    st = exec2.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
            }
            CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec2), tid)));
            let result = panic::catch_unwind(AssertUnwindSafe(f));
            CURRENT.with(|c| *c.borrow_mut() = None);
            let mut st = exec2.st();
            if let Err(p) = result {
                if !p.is::<AbortSchedule>() {
                    let msg = payload_to_string(p.as_ref());
                    if st.violation.is_none() {
                        st.violation = Some(format!("thread t{tid} panicked: {msg}"));
                    }
                    st.abort = true;
                }
            }
            st.threads[tid].pending = Pending::Exited;
            st.running = None;
            exec2.cv.notify_all();
        })
        .expect("spawn minloom controlled thread");
    exec.st().os_handles.push(handle);
}

/// Can `tid` perform its pending operation in the current state?
fn enabled_of(st: &State, tid: Tid) -> bool {
    match st.threads[tid].pending {
        Pending::Start => true,
        Pending::Op(op) => match op {
            Op::Lock(o) => matches!(st.objects[o], ObjSt::Mutex { holder: None, .. }),
            Op::Recv(o) => match &st.objects[o] {
                ObjSt::Channel { ids, senders, .. } => !ids.is_empty() || *senders == 0,
                _ => unreachable!("recv on non-channel"),
            },
            Op::Join(t) => st.threads[t].pending == Pending::Exited,
            // `RecvTimeout` is always enabled: granting it with an empty
            // queue *is* the timeout branch, so both futures (message
            // first, timeout first) fall out of the schedule choice.
            _ => true,
        },
        Pending::CondWait { .. } | Pending::Running | Pending::Exited => false,
    }
}

fn pending_code(p: Pending) -> u64 {
    match p {
        Pending::Start => 1,
        Pending::Op(op) => {
            let (k, o) = match op {
                Op::AtomicLoad(o) => (2, o),
                Op::AtomicStore(o) => (3, o),
                Op::AtomicRmw(o) => (4, o),
                Op::Lock(o) => (5, o),
                Op::Send(o) => (6, o),
                Op::Recv(o) => (7, o),
                Op::RecvTimeout(o) => (8, o),
                Op::TryRecv(o) => (9, o),
                Op::NotifyOne(o) => (10, o),
                Op::NotifyAll(o) => (11, o),
                Op::Join(t) => (12, t),
                Op::IsFinished(t) => (13, t),
                Op::Yield => (14, 0),
            };
            mix(k, o as u64)
        }
        Pending::CondWait { mutex } => mix(15, mutex as u64),
        Pending::Running => 16,
        Pending::Exited => 17,
    }
}

/// Fingerprint of the decision-relevant state: thread continuations plus
/// shim-object contents. Two states with equal fingerprints have (up to
/// 64-bit collisions) identical futures, because model code is
/// deterministic given what each thread has observed.
fn state_key(st: &State) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for t in &st.threads {
        h = mix(h, pending_code(t.pending));
        h = mix(h, t.history);
    }
    for o in &st.objects {
        match o {
            ObjSt::Atomic { value } => h = mix(mix(h, 21), *value),
            ObjSt::Mutex { holder, content } => {
                h = mix(mix(h, 22), holder.map_or(u64::MAX, |t| t as u64));
                h = mix(h, *content);
            }
            ObjSt::Condvar { waiters } => {
                h = mix(h, 23);
                for &w in waiters {
                    h = mix(h, w as u64);
                }
            }
            ObjSt::Channel {
                ids,
                senders,
                receivers,
            } => {
                h = mix(mix(h, 24), ((*senders as u64) << 32) | *receivers as u64);
                for &i in ids {
                    h = mix(h, i);
                }
            }
        }
    }
    h
}

/// How one schedule ended.
enum Outcome {
    Complete,
    Pruned,
    Truncated,
    Violation(crate::Violation),
}

struct Choice {
    enabled: Vec<Tid>,
    cursor: usize,
}

/// Silence panic output from controlled threads: assertion failures
/// during exploration are *expected* (they are how violations are
/// found) and are re-reported with their schedule trace; the default
/// hook would spray one backtrace per violating or aborted schedule.
fn install_panic_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let silenced = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("minloom-t"));
            if !silenced {
                default(info);
            }
        }));
    });
}

/// The DFS driver behind [`crate::Builder::explore`].
pub(crate) fn explore(opts: &crate::Builder, f: Arc<dyn Fn() + Send + Sync>) -> crate::Report {
    install_panic_hook();
    let mut stack: Vec<Choice> = Vec::new();
    // state fingerprint → largest preemption budget it was explored with.
    let mut visited: HashMap<u64, usize> = HashMap::new();
    let mut report = crate::Report {
        schedules: 0,
        pruned: 0,
        truncated: 0,
        complete: false,
        violation: None,
    };
    let mut runs: u64 = 0;
    loop {
        runs += 1;
        if runs > opts.max_schedules {
            return report;
        }
        match run_schedule(opts, &f, &mut stack, &mut visited) {
            Outcome::Complete => report.schedules += 1,
            Outcome::Pruned => report.pruned += 1,
            Outcome::Truncated => report.truncated += 1,
            Outcome::Violation(v) => {
                report.violation = Some(v);
                return report;
            }
        }
        // Backtrack to the deepest decision with an untried alternative.
        loop {
            match stack.last_mut() {
                None => {
                    report.complete = true;
                    return report;
                }
                Some(c) => {
                    c.cursor += 1;
                    if c.cursor < c.enabled.len() {
                        break;
                    }
                    stack.pop();
                }
            }
        }
    }
}

fn run_schedule(
    opts: &crate::Builder,
    f: &Arc<dyn Fn() + Send + Sync>,
    stack: &mut Vec<Choice>,
    visited: &mut HashMap<u64, usize>,
) -> Outcome {
    let exec = Arc::new(Exec::new());
    let root = exec.register_thread();
    let body = Arc::clone(f);
    spawn_controlled(&exec, root, move || body());

    let mut d = 0usize;
    let mut last: Option<Tid> = None;
    let mut preemptions = 0usize;
    let outcome = loop {
        let mut st = exec.st();
        while st.running.is_some() {
            st = exec.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if let Some(v) = st.violation.take() {
            let trace = std::mem::take(&mut st.trace);
            break Outcome::Violation(crate::Violation { message: v, trace });
        }
        if st.threads.iter().all(|t| t.pending == Pending::Exited) {
            break Outcome::Complete;
        }
        let enabled: Vec<Tid> = (0..st.threads.len())
            .filter(|&t| enabled_of(&st, t))
            .collect();
        if enabled.is_empty() {
            let live = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.pending != Pending::Exited)
                .map(|(i, t)| format!("t{i}:{:?}", t.pending))
                .collect::<Vec<_>>()
                .join(", ");
            let trace = std::mem::take(&mut st.trace);
            break Outcome::Violation(crate::Violation {
                message: format!("deadlock: no schedulable thread ({live})"),
                trace,
            });
        }
        if d >= opts.max_depth {
            break Outcome::Truncated;
        }
        let budget = opts
            .preemption_bound
            .map_or(usize::MAX, |b| b - preemptions);
        if d >= stack.len() {
            // Fresh territory: dedup, then record the candidate list.
            match visited.entry(state_key(&st)) {
                Entry::Occupied(mut e) => {
                    if *e.get() >= budget {
                        break Outcome::Pruned;
                    }
                    e.insert(budget);
                }
                Entry::Vacant(e) => {
                    e.insert(budget);
                }
            }
            let list = match last {
                // Out of preemption budget: only the incumbent may
                // continue (forced switches were filtered above — if the
                // incumbent is disabled, every switch is free).
                Some(l) if budget == 0 && enabled.contains(&l) => vec![l],
                _ => {
                    let mut list = enabled.clone();
                    // Non-preemptive continuation first: DFS explores the
                    // "run until blocked" spine before any interleaving.
                    if let Some(l) = last {
                        if let Some(pos) = list.iter().position(|&x| x == l) {
                            list.remove(pos);
                            list.insert(0, l);
                        }
                    }
                    list
                }
            };
            stack.push(Choice {
                enabled: list,
                cursor: 0,
            });
        }
        let choice = stack[d].enabled[stack[d].cursor];
        debug_assert!(
            enabled.contains(&choice),
            "replay divergence: t{choice} not enabled at depth {d}"
        );
        if let Some(l) = last {
            if l != choice && enabled.contains(&l) {
                preemptions += 1;
            }
        }
        last = Some(choice);
        d += 1;
        st.running = Some(choice);
        drop(st);
        exec.cv.notify_all();
    };

    // Teardown: unwind whatever is still parked, then join every OS
    // thread so no schedule leaks threads into the next.
    let handles = {
        let mut st = exec.st();
        st.abort = true;
        st.running = None;
        exec.cv.notify_all();
        std::mem::take(&mut st.os_handles)
    };
    for h in handles {
        let _ = h.join();
    }
    outcome
}

//! # minloom — a small exhaustive-interleaving model checker
//!
//! Vendored, dependency-free stand-in for the loom/CHESS family, sized
//! for this workspace: write a concurrent protocol against the shim
//! primitives in [`sync`], [`channel`], and [`thread`], hand it to
//! [`model`] (or a tuned [`Builder`]), and the checker runs it under
//! *every* thread interleaving up to a preemption bound, failing with a
//! replayable schedule trace if any assertion fires or any schedule
//! deadlocks.
//!
//! ```
//! use minloom::sync::{AtomicUsize, Ordering};
//! use minloom::{model, thread};
//! use std::sync::Arc;
//!
//! model(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let n = Arc::clone(&n);
//!             thread::spawn(move || {
//!                 n.fetch_add(1, Ordering::SeqCst);
//!             })
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join().unwrap();
//!     }
//!     assert_eq!(n.load(Ordering::SeqCst), 2);
//! });
//! ```
//!
//! ## How it works
//!
//! Controlled threads are real OS threads that park at every shim
//! operation and run only when granted the single execution slice. The
//! controller does a depth-first search over grant sequences with a
//! replay stack, pruning via two mechanisms:
//!
//! * **Preemption bounding** ([`Builder::preemption_bound`]): switching
//!   away from a runnable thread spends budget; forced switches are
//!   free. Bound 2 catches the overwhelming majority of real races at a
//!   tiny fraction of the full schedule space.
//! * **State-hash deduplication**: states are fingerprinted (thread
//!   continuations by running history hashes, plus shim-object contents)
//!   and revisits with no more budget than before are pruned.
//!
//! ## Unbounded poll loops: [`checkpoint`]
//!
//! A loop like `loop { match rx.recv_timeout(..) { .. } }` has
//! infinitely many schedules (timeout, timeout, ...). Call
//! `minloom::checkpoint(h)` at the top of such a loop, where `h` hashes
//! every loop-carried local that affects behavior: it *replaces* the
//! calling thread's history with `h`, so iterations that changed nothing
//! map to the same state fingerprint and dedup terminates the unrolling.
//! The caller owns the proof obligation that `h` really captures all
//! behavior-relevant state; the worked examples in this workspace hash
//! their full loop-local tuple.

mod exec;

pub mod channel;
pub mod sync;
pub mod thread;

use std::sync::Arc;

/// A failed schedule: what went wrong and the exact grant sequence that
/// got there (one line per granted operation, in order).
#[derive(Debug, Clone)]
pub struct Violation {
    pub message: String,
    pub trace: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.message)?;
        writeln!(f, "schedule ({} steps):", self.trace.len())?;
        for line in &self.trace {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// Exploration statistics returned by [`Builder::explore`].
#[derive(Debug, Clone)]
pub struct Report {
    /// Schedules that ran to completion (every thread exited).
    pub schedules: u64,
    /// Schedules abandoned at an already-explored state fingerprint.
    pub pruned: u64,
    /// Schedules abandoned at [`Builder::max_depth`].
    pub truncated: u64,
    /// The DFS frontier was exhausted (every schedule completed, pruned,
    /// or truncated) within [`Builder::max_schedules`].
    pub complete: bool,
    /// First violation found, if any (the search stops on it).
    pub violation: Option<Violation>,
}

/// Exploration configuration.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Maximum *preemptive* context switches per schedule; `None` means
    /// unbounded (full interleaving exploration).
    pub preemption_bound: Option<usize>,
    /// Maximum scheduling decisions per schedule; deeper runs count as
    /// truncated and make the exploration incomplete evidence.
    pub max_depth: usize,
    /// Hard cap on schedules attempted (completed + pruned + truncated).
    pub max_schedules: u64,
}

impl Default for Builder {
    fn default() -> Self {
        Self {
            preemption_bound: None,
            max_depth: 10_000,
            max_schedules: 1_000_000,
        }
    }
}

impl Builder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = Some(bound);
        self
    }

    pub fn max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth;
        self
    }

    pub fn max_schedules(mut self, n: u64) -> Self {
        self.max_schedules = n;
        self
    }

    /// Run `f` under every schedule (up to the configured bounds) and
    /// return what happened. `f` runs once per schedule, from scratch —
    /// it must be self-contained and deterministic apart from the
    /// interleaving.
    pub fn explore(&self, f: impl Fn() + Send + Sync + 'static) -> Report {
        exec::explore(self, Arc::new(f))
    }

    /// Like [`Builder::explore`], but panics with the counterexample
    /// trace on a violation, and panics if the schedule budget ran out
    /// before the exploration completed (an incomplete search is not
    /// evidence of correctness).
    ///
    /// # Panics
    /// On the first violating schedule, or on budget exhaustion.
    pub fn check(&self, f: impl Fn() + Send + Sync + 'static) {
        let report = self.explore(f);
        if let Some(v) = &report.violation {
            panic!(
                "minloom: violation after {} schedules ({} pruned):\n{v}",
                report.schedules, report.pruned
            );
        }
        assert!(
            report.complete,
            "minloom: exploration incomplete: budget of {} schedules exhausted \
             ({} completed, {} pruned, {} truncated) — raise max_schedules or \
             tighten the model",
            self.max_schedules, report.schedules, report.pruned, report.truncated
        );
    }
}

/// Check `f` under the default [`Builder`] (unbounded preemptions),
/// panicking with a schedule trace on any violation.
///
/// # Panics
/// See [`Builder::check`].
pub fn model(f: impl Fn() + Send + Sync + 'static) {
    Builder::new().check(f);
}

/// Replace the calling thread's history fingerprint with `h` — call at
/// the top of an otherwise-unbounded poll loop with a hash of every
/// behavior-relevant loop-carried local (see the crate docs for the
/// contract). Silent: not a scheduling point.
pub fn checkpoint(h: u64) {
    let (exec, me) = exec::current();
    let mut st = exec.st();
    st.threads[me].history = exec::mix(exec::mix(0xc4ec, me as u64), h);
}

/// Order-sensitive 64-bit hash fold, exported so models can build
/// [`checkpoint`] digests without hand-rolling a mixer.
pub fn hash_fold(h: u64, v: u64) -> u64 {
    exec::mix(h, v)
}

/// Fold `h` into the calling thread's history fingerprint (silent: not
/// a scheduling point). Use this to make state the scheduler cannot see
/// — above all a *message payload* about to be sent — part of the state
/// key: channel message identity is derived from the sender's history,
/// so two sends become distinguishable to dedup exactly when the sender
/// traced distinguishing state first.
pub fn trace_value(h: u64) {
    let (exec, me) = exec::current();
    let mut st = exec.st();
    let cur = st.threads[me].history;
    st.threads[me].history = exec::mix(cur, h);
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use super::sync::{AtomicUsize, Condvar, Mutex, Ordering};
    use super::{checkpoint, hash_fold, thread, Builder};
    use std::sync::Arc;
    use std::time::Duration;

    /// Two threads doing a non-atomic read-modify-write must lose an
    /// update in some schedule — the checker has to find it.
    #[test]
    fn finds_lost_update() {
        let report = Builder::new().explore(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        let v = n.load(Ordering::SeqCst);
                        n.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        });
        let v = report.violation.expect("checker must find the lost update");
        assert!(v.message.contains("lost update"), "wrong violation: {v}");
        assert!(!v.trace.is_empty(), "violation must carry a schedule trace");
    }

    /// One preemption is enough to lose an update, so the bound-1 search
    /// must still find it.
    #[test]
    fn finds_lost_update_within_preemption_bound() {
        let report = Builder::new().preemption_bound(1).explore(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        let v = n.load(Ordering::SeqCst);
                        n.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        });
        assert!(report.violation.is_some());
    }

    /// The same counter with a real RMW has no bad schedule; the
    /// exploration must terminate and stay silent across three threads.
    #[test]
    fn fetch_add_counter_is_clean() {
        let report = Builder::new().explore(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        n.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 3);
        });
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.complete);
        assert!(report.schedules > 1, "must explore real interleavings");
    }

    /// Lock-protected increments are race-free.
    #[test]
    fn mutex_counter_is_clean() {
        let report = Builder::new().explore(|| {
            let n = Arc::new(Mutex::new(0_u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        *n.lock() += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*n.lock(), 2);
        });
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.complete);
    }

    /// Opposite lock orders deadlock in some schedule; the checker must
    /// report it rather than hang.
    #[test]
    fn detects_lock_order_deadlock() {
        let report = Builder::new().explore(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h = thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            {
                let _gb = b.lock();
                let _ga = a.lock();
            }
            let _ = h.join();
        });
        let v = report.violation.expect("deadlock must be detected");
        assert!(v.message.contains("deadlock"), "wrong violation: {v}");
    }

    /// Condvar wait/notify with the flag checked under the lock: no
    /// schedule hangs or fails.
    #[test]
    fn condvar_handoff_is_clean() {
        let report = Builder::new().explore(|| {
            let m = Arc::new(Mutex::new(false));
            let cv = Arc::new(Condvar::new());
            let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
            let h = thread::spawn(move || {
                let mut g = m2.lock();
                while !*g {
                    g = cv2.wait(g);
                }
            });
            *m.lock() = true;
            cv.notify_one();
            h.join().unwrap();
        });
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.complete);
    }

    /// A notify with no flag behind it loses the race in the schedule
    /// where the waiter parks afterwards — detected as a deadlock.
    #[test]
    fn detects_lost_notify() {
        let report = Builder::new().explore(|| {
            let m = Arc::new(Mutex::new(()));
            let cv = Arc::new(Condvar::new());
            let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
            let h = thread::spawn(move || {
                // Bug under test: waits unconditionally, no predicate.
                let g = m2.lock();
                let _g = cv2.wait(g);
            });
            cv.notify_one();
            let _ = h.join();
        });
        let v = report.violation.expect("lost notify must be detected");
        assert!(v.message.contains("deadlock"), "wrong violation: {v}");
    }

    /// recv_timeout explores both the message-first and timeout-first
    /// branches; a checkpoint at the loop top keeps the timeout spin
    /// finite. The message must arrive in every completed schedule.
    #[test]
    fn channel_recv_timeout_poll_loop_terminates() {
        let report = Builder::new().explore(|| {
            let (tx, rx) = unbounded::<u32>();
            let h = thread::spawn(move || {
                tx.send(7).unwrap();
            });
            let mut got = None;
            while got.is_none() {
                checkpoint(hash_fold(0x906f, u64::from(got.is_none())));
                match rx.recv_timeout(Duration::from_millis(1)) {
                    Ok(v) => got = Some(v),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            h.join().unwrap();
            assert_eq!(got, Some(7));
        });
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.complete, "poll loop must dedup to a finite search");
        assert!(
            report.pruned > 0,
            "futile timeout iterations must be pruned, got {report:?}"
        );
    }

    /// Dropping all senders turns a blocked recv into Disconnected
    /// rather than a deadlock.
    #[test]
    fn channel_disconnect_unblocks_recv() {
        let report = Builder::new().explore(|| {
            let (tx, rx) = unbounded::<u32>();
            let h = thread::spawn(move || {
                tx.send(1).unwrap();
                // tx dropped here.
            });
            assert_eq!(rx.recv(), Ok(1));
            assert!(rx.recv().is_err(), "disconnect must surface as RecvError");
            h.join().unwrap();
        });
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.complete);
    }

    /// Preemption bounding explores strictly fewer schedules than the
    /// unbounded search when interleaving requires preempting a
    /// still-runnable thread (here: two distinguishable load/store
    /// threads — `trace_value` makes them asymmetric so symmetry dedup
    /// doesn't collapse the orders).
    #[test]
    fn preemption_bound_prunes_schedules() {
        fn two_writers() -> impl Fn() + Send + Sync + 'static {
            || {
                let n = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|i| {
                        let n = Arc::clone(&n);
                        thread::spawn(move || {
                            super::trace_value(i as u64);
                            let v = n.load(Ordering::SeqCst);
                            n.store(v + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            }
        }
        let full = Builder::new().explore(two_writers());
        let bounded = Builder::new().preemption_bound(0).explore(two_writers());
        assert!(full.violation.is_none());
        assert!(bounded.violation.is_none());
        assert!(full.complete && bounded.complete);
        assert!(
            bounded.schedules < full.schedules,
            "bound 0 ({}) must explore fewer schedules than unbounded ({})",
            bounded.schedules,
            full.schedules
        );
    }

    /// Bound 0 permits only forced switches, which serializes the racy
    /// increment pair — the lost update needs one preemption, so the
    /// bound-0 search must complete WITHOUT finding it while bound-1
    /// does. This pins the forced-vs-preemptive accounting.
    #[test]
    fn preemption_bound_zero_serializes() {
        fn racy() -> impl Fn() + Send + Sync + 'static {
            || {
                let n = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let n = Arc::clone(&n);
                        thread::spawn(move || {
                            let v = n.load(Ordering::SeqCst);
                            n.store(v + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
            }
        }
        let b0 = Builder::new().preemption_bound(0).explore(racy());
        assert!(b0.complete);
        assert!(
            b0.violation.is_none(),
            "bound 0 cannot interleave the load/store pairs: {:?}",
            b0.violation
        );
        let b1 = Builder::new().preemption_bound(1).explore(racy());
        assert!(b1.violation.is_some(), "one preemption exposes the race");
    }

    /// is_finished is an observation: both answers are explored, and a
    /// spin on it with a checkpoint terminates.
    #[test]
    fn is_finished_spin_terminates() {
        let report = Builder::new().explore(|| {
            let h = thread::spawn(|| 42_u32);
            while !h.is_finished() {
                checkpoint(0);
            }
            assert_eq!(h.join().unwrap(), 42);
        });
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.complete);
    }
}

//! Offline stand-in for `rayon`.
//!
//! Implements a genuine (if small) **work-stealing thread pool**: each
//! worker owns a deque, runs it front-to-back, and steals from the back of
//! a victim's deque when it runs dry; external submissions are spread
//! round-robin across the deques. That is the scheduling discipline rayon
//! is named for, scaled down to ~200 lines of std-only code for a
//! container with no crates.io access.
//!
//! One deliberate divergence: worker-local spawns are enqueued **FIFO**
//! (rayon's `spawn_fifo`), not LIFO (rayon's `spawn`). The consumers here
//! are event-driven task graphs — message-triggered activations that spawn
//! their successors — where LIFO self-scheduling lets a two-task cycle
//! starve every older queued task forever on a busy worker (guaranteed on
//! a single-core machine, where no thief can rescue them). FIFO makes the
//! pool starvation-free for exactly that shape.
//!
//! Differences from upstream, by design of a small stub:
//!
//! * spawned closures must be `'static` (state is shared via `Arc`, which
//!   is how the DTM rayon backend uses it anyway) — there is no
//!   lifetime-juggling `Scope<'scope>`;
//! * [`Scope::spawn`] takes `&self` and the handle is cloneable, so tasks
//!   that need to spawn continuations capture a clone;
//! * no `par_iter`; the pool surface (`ThreadPoolBuilder`, `spawn`,
//!   `scope`, `wait_quiescent`) is what the workspace consumes.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

type Task = Box<dyn FnOnce() + Send + 'static>;

struct PoolInner {
    queues: Vec<Mutex<VecDeque<Task>>>,
    injector: Mutex<VecDeque<Task>>,
    /// Tasks submitted and not yet finished.
    pending: AtomicUsize,
    shutdown: AtomicBool,
    park: Mutex<()>,
    work_cv: Condvar,
    idle: Mutex<()>,
    idle_cv: Condvar,
    next_queue: AtomicUsize,
}

thread_local! {
    /// `(pool identity, worker index)` when running on a pool thread.
    static WORKER: std::cell::Cell<Option<(usize, usize)>> =
        const { std::cell::Cell::new(None) };
}

impl PoolInner {
    fn id(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    fn push(self: &Arc<Self>, task: Task) {
        self.pending.fetch_add(1, Ordering::AcqRel);
        let worker = WORKER.with(|w| w.get());
        match worker {
            // A worker spawning onto its own pool: FIFO local push (see
            // the module docs for why not LIFO).
            Some((pool, idx)) if pool == self.id() => {
                self.queues[idx].lock().unwrap().push_back(task);
            }
            _ => {
                let k = self.next_queue.fetch_add(1, Ordering::Relaxed);
                if self.queues.is_empty() {
                    self.injector.lock().unwrap().push_back(task);
                } else {
                    // Round-robin external pushes across worker deques to
                    // spread initial load; the injector catches overflow
                    // races only in the zero-worker edge case above.
                    self.queues[k % self.queues.len()]
                        .lock()
                        .unwrap()
                        .push_back(task);
                }
            }
        }
        // Notify under the park lock: a worker that missed this task in
        // its scan re-checks `has_queued` under the same lock before
        // sleeping, so the wakeup cannot be lost between its miss and its
        // wait. (A lost wakeup here once delayed a queued task a full
        // park-timeout — an eternity next to microsecond solve tasks.)
        let _guard = self.park.lock().unwrap();
        self.work_cv.notify_one();
    }

    /// Any task currently sitting in a deque or the injector?
    fn has_queued(&self) -> bool {
        if !self.injector.lock().unwrap().is_empty() {
            return true;
        }
        self.queues.iter().any(|q| !q.lock().unwrap().is_empty())
    }

    /// Own deque front → injector → steal from the back of other deques.
    fn find_task(&self, me: usize) -> Option<Task> {
        if let Some(t) = self.queues[me].lock().unwrap().pop_front() {
            return Some(t);
        }
        if let Some(t) = self.injector.lock().unwrap().pop_front() {
            return Some(t);
        }
        let n = self.queues.len();
        for off in 1..n {
            let victim = (me + off) % n;
            if let Some(t) = self.queues[victim].lock().unwrap().pop_back() {
                return Some(t);
            }
        }
        None
    }

    fn finish_task(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.idle.lock().unwrap();
            self.idle_cv.notify_all();
        }
    }
}

fn worker_loop(inner: Arc<PoolInner>, me: usize) {
    WORKER.with(|w| w.set(Some((inner.id(), me))));
    loop {
        if let Some(task) = inner.find_task(me) {
            task();
            inner.finish_task();
            continue;
        }
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let guard = inner.park.lock().unwrap();
        // Close the miss-then-park race: a task pushed after our scan
        // notifies under this same lock, so re-checking here guarantees we
        // either see it or we are parked before the notification fires.
        if inner.has_queued() {
            continue;
        }
        // Timed park as a second belt against any residual race.
        let _ = inner
            .work_cv
            .wait_timeout(guard, Duration::from_millis(1))
            .unwrap();
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type mirroring `rayon::ThreadPoolBuildError`.
#[derive(Debug)]
pub struct ThreadPoolBuildError(String);

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build failed: {}", self.0)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker count; defaults to available parallelism.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Spawn the workers.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => std::thread::available_parallelism()
                .map(|v| v.get())
                .unwrap_or(4),
            Some(n) => n,
        };
        let inner = Arc::new(PoolInner {
            queues: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            park: Mutex::new(()),
            work_cv: Condvar::new(),
            idle: Mutex::new(()),
            idle_cv: Condvar::new(),
            next_queue: AtomicUsize::new(0),
        });
        let handles = (0..n)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("rayon-stub-{i}"))
                    .spawn(move || worker_loop(inner, i))
                    .map_err(|e| ThreadPoolBuildError(e.to_string()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ThreadPool { inner, handles })
    }
}

/// The work-stealing pool.
pub struct ThreadPool {
    inner: Arc<PoolInner>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Number of worker threads.
    pub fn current_num_threads(&self) -> usize {
        self.handles.len()
    }

    /// Submit a fire-and-forget task.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, f: F) {
        assert!(
            !self.inner.shutdown.load(Ordering::Acquire),
            "spawn on shut-down pool"
        );
        self.inner.push(Box::new(f));
    }

    /// Run `f` with a [`Scope`] handle and block until every task spawned
    /// through that handle (transitively) has finished.
    pub fn scope<F: FnOnce(&Scope)>(&self, f: F) {
        let scope = Scope {
            pool: self.inner.clone(),
            live: Arc::new(AtomicUsize::new(0)),
        };
        f(&scope);
        scope.wait();
    }

    /// Run `f(i)` for every `i in 0..n` across the pool and block until all
    /// indices have completed. The caller participates: it drains the same
    /// shared index cursor as the worker tasks, so progress is guaranteed
    /// even on a saturated (or zero-thread) pool and a nested call can
    /// never deadlock the calling thread. Indices are claimed dynamically
    /// (an atomic cursor), so uneven per-index costs load-balance the same
    /// way stolen tasks do.
    ///
    /// Unlike [`spawn`](Self::spawn), `f` may borrow from the caller's
    /// stack: the call does not return until every index has run, so the
    /// borrow outlives all uses (the same structured-concurrency argument
    /// `std::thread::scope` makes; the lifetime erasure below is sound
    /// because of the barrier).
    ///
    /// # Panics
    /// `f` must not panic: a panicking index aborts the process (the
    /// barrier could otherwise never be released — matching rayon, which
    /// aborts on panicking spawned tasks).
    pub fn for_each_index<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        struct Job {
            data: *const (),
            call: unsafe fn(*const (), usize),
            cursor: AtomicUsize,
            done: AtomicUsize,
            total: usize,
        }
        unsafe impl Send for Job {}
        unsafe impl Sync for Job {}
        impl Job {
            fn drain(&self) {
                loop {
                    let i = self.cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= self.total {
                        return;
                    }
                    let guard = AbortOnPanic;
                    // SAFETY: `for_each_index` blocks until `done == total`,
                    // so the closure this pointer was erased from is still
                    // alive whenever `drain` runs.
                    unsafe { (self.call)(self.data, i) };
                    std::mem::forget(guard);
                    self.done.fetch_add(1, Ordering::AcqRel);
                }
            }
        }
        unsafe fn call_thunk<F: Fn(usize) + Sync>(data: *const (), i: usize) {
            // SAFETY: `data` is the `&f` captured below, type-erased;
            // the blocking join at the end of `for_each_index` keeps it
            // alive for every invocation, and `F: Sync` licenses the
            // shared calls.
            unsafe { (*(data as *const F))(i) };
        }
        struct AbortOnPanic;
        impl Drop for AbortOnPanic {
            fn drop(&mut self) {
                eprintln!("rayon stub: for_each_index closure panicked; aborting");
                std::process::abort();
            }
        }
        let job = Arc::new(Job {
            data: &f as *const F as *const (),
            call: call_thunk::<F>,
            cursor: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            total: n,
        });
        // One helper task per worker (capped by the index count); each
        // drains the shared cursor, so tasks that find it exhausted exit
        // immediately.
        let helpers = self.current_num_threads().min(n.saturating_sub(1));
        for _ in 0..helpers {
            let job = job.clone();
            self.spawn(move || job.drain());
        }
        job.drain();
        while job.done.load(Ordering::Acquire) < n {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }

    /// Tasks submitted and not yet finished (queued or running).
    pub fn pending_tasks(&self) -> usize {
        self.inner.pending.load(Ordering::Acquire)
    }

    /// Block until the pool has no submitted-but-unfinished tasks.
    pub fn wait_quiescent(&self) {
        let mut guard = self.inner.idle.lock().unwrap();
        while self.inner.pending.load(Ordering::Acquire) > 0 {
            let (g, _) = self
                .inner
                .idle_cv
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap();
            guard = g;
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Cloneable spawn handle for structured task groups.
#[derive(Clone)]
pub struct Scope {
    pool: Arc<PoolInner>,
    live: Arc<AtomicUsize>,
}

impl Scope {
    /// Spawn a task tracked by this scope. Tasks that spawn continuations
    /// capture a clone of the scope.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.live.fetch_add(1, Ordering::AcqRel);
        let live = self.live.clone();
        self.pool.push(Box::new(move || {
            f();
            live.fetch_sub(1, Ordering::AcqRel);
        }));
    }

    fn wait(&self) {
        while self.live.load(Ordering::Acquire) > 0 {
            std::thread::sleep(Duration::from_micros(50));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn spawn_and_quiesce() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..1000 {
            let c = counter.clone();
            pool.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_quiescent();
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn scope_waits_for_nested_spawns() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let counter = Arc::new(AtomicU64::new(0));
        pool.scope(|s| {
            for _ in 0..8 {
                let c = counter.clone();
                let s2 = s.clone();
                s.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                    for _ in 0..4 {
                        let c = c.clone();
                        s2.spawn(move || {
                            c.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8 + 8 * 4);
    }

    #[test]
    fn for_each_index_covers_all_and_borrows_stack() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
        pool.for_each_index(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::Relaxed),
                1,
                "index {i} not run exactly once"
            );
        }
        // n == 0 and n == 1 degenerate cases, plus reuse of the same pool.
        pool.for_each_index(0, |_| panic!("must not run"));
        let one = AtomicU64::new(0);
        pool.for_each_index(1, |i| {
            one.fetch_add(i as u64 + 10, Ordering::Relaxed);
        });
        assert_eq!(one.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn for_each_index_nested_does_not_deadlock() {
        let pool = Arc::new(ThreadPoolBuilder::new().num_threads(2).build().unwrap());
        let total = AtomicU64::new(0);
        let inner_pool = pool.clone();
        pool.for_each_index(4, |_| {
            inner_pool.for_each_index(8, |j| {
                total.fetch_add(j as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * (0..8).sum::<u64>());
    }

    #[test]
    fn work_is_stolen_across_workers() {
        // One worker floods its own deque via local spawns; with stealing,
        // other workers execute some of them. Observed worker identities
        // must exceed one.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let seen = Arc::new(Mutex::new(std::collections::BTreeSet::new()));
        pool.scope(|s| {
            let seen = seen.clone();
            let s2 = s.clone();
            s.spawn(move || {
                for _ in 0..64 {
                    let seen = seen.clone();
                    s2.spawn(move || {
                        seen.lock()
                            .unwrap()
                            .insert(std::thread::current().name().map(String::from));
                        std::thread::sleep(Duration::from_micros(200));
                    });
                }
            });
        });
        assert!(seen.lock().unwrap().len() > 1, "no stealing observed");
    }
}

//! Offline stand-in for `crossbeam`.
//!
//! Provides the `channel` module surface the workspace uses: unbounded
//! MPMC channels with `send` / `recv` / `recv_timeout` / `try_recv`,
//! cloneable on both ends. Built on `Mutex<VecDeque>` + `Condvar` instead
//! of crossbeam's lock-free lists — identical semantics (FIFO, disconnect
//! on last-sender drop), lower throughput ceiling, which none of the DTM
//! executors approach.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (messages go to whichever receiver pops
    /// first, like crossbeam's MPMC channels).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message like crossbeam's.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::Relaxed);
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                let _guard = self.shared.queue.lock().unwrap();
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::Relaxed);
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `msg`; fails only when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut queue = self.shared.queue.lock().unwrap();
            queue.push_back(msg);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.shared.senders.load(Ordering::Acquire) == 0
        }

        /// Pop without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            match queue.pop_front() {
                Some(v) => Ok(v),
                None if self.disconnected() => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                queue = self.shared.ready.wait(queue).unwrap();
            }
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, result) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap();
                queue = guard;
                if result.timed_out() && queue.is_empty() {
                    return if self.disconnected() {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn fifo_and_timeout() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(2));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnect_observed() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(7).unwrap();
        drop(tx2);
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded::<u64>();
        let h = std::thread::spawn(move || {
            for i in 0..100u64 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..100 {
            sum += rx.recv().unwrap();
        }
        h.join().unwrap();
        assert_eq!(sum, 4950);
    }
}

//! Offline stand-in for `criterion`.
//!
//! The workspace's benches are written against the criterion API
//! (`criterion_group!`, `benchmark_group`, `bench_with_input`, …). This
//! stub keeps them compiling and running without crates.io: each benchmark
//! is timed with a short warm-up followed by `sample_size` timed samples,
//! and the median per-iteration time is printed. No statistics beyond
//! median/min/max, no HTML reports, no regression baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Soft cap on time spent per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Honour standard CLI filters is out of scope for the stub; kept for
    /// source compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, self.measurement_time, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }

    /// Upstream prints the final summary here; the stub prints per-bench.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Override the time cap for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label());
        run_one(&label, self.sample_size, self.measurement_time, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label());
        run_one(&label, self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Function + parameter id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            function: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self {
            function: Some(name),
            parameter: None,
        }
    }
}

/// Per-benchmark timing driver handed to the closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `routine`, recording one sample of `iters_per_sample`
    /// back-to-back iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        let ns = start.elapsed().as_nanos() as f64 / self.iters_per_sample as f64;
        self.samples_ns.push(ns);
    }
}

fn run_one<F>(label: &str, sample_size: usize, budget: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration pass: one iteration, to size the per-sample batch.
    let mut bencher = Bencher {
        samples_ns: Vec::new(),
        iters_per_sample: 1,
    };
    let started = Instant::now();
    f(&mut bencher);
    let once_ns = bencher.samples_ns.first().copied().unwrap_or(0.0).max(1.0);
    // Aim each sample at ~budget / sample_size, at least one iteration.
    let per_sample_ns = budget.as_nanos() as f64 / sample_size as f64;
    let iters = (per_sample_ns / once_ns).clamp(1.0, 1e7) as u64;

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        if started.elapsed() > budget.saturating_mul(4) {
            break; // Hard cap: slow benches report fewer samples.
        }
        let mut b = Bencher {
            samples_ns: Vec::new(),
            iters_per_sample: iters,
        };
        f(&mut b);
        samples.extend(b.samples_ns);
    }
    if samples.is_empty() {
        samples.push(once_ns);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let (min, max) = (samples[0], samples[samples.len() - 1]);
    println!(
        "bench {label:<48} median {:>12} (min {}, max {}, {} samples x {} iters)",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max),
        samples.len(),
        iters
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Group benchmark functions into a callable, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10));
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.bench_with_input(BenchmarkId::from_parameter(9), &9usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}

//! Offline stand-in for `serde`.
//!
//! The container cannot reach crates.io, so this stub provides just what
//! the workspace consumes: a `Serialize` marker trait (blanket-implemented,
//! so bounds always hold) and the re-exported no-op derive macros. When the
//! build environment gains network access, deleting `vendor/serde*` and
//! pointing the workspace manifests at crates.io restores real serde with
//! no source changes.

/// Marker for serialization-ready types. Blanket-implemented: the stub
/// derive expands to nothing, so the bound must be satisfiable for free.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for deserialization-ready types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

// Derive macros share the trait names (separate macro namespace, exactly
// like real serde with the `derive` feature).
pub use serde_derive::{Deserialize, Serialize};

//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so this
//! workspace vendors the tiny slice of the `rand` 0.8 API it actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for test-workload generation, deterministic per seed, and free of
//! external dependencies. Streams differ from upstream `rand`'s `StdRng`
//! (ChaCha12), which only changes *which* random systems the seeds produce,
//! never the properties the tests assert.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw word from the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring the `rand::Rng` extension trait.
pub trait Rng: RngCore {
    /// Sample uniformly from `range`.
    ///
    /// # Panics
    /// Panics on an empty range, like upstream `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<G: RngCore + ?Sized> Rng for G {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// Uniform in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<G: RngCore + ?Sized>(rng: &mut G) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Uniform integer in `[0, span)` (modulo with rejection of the biased tail).
#[inline]
fn below<G: RngCore + ?Sized>(rng: &mut G, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generator namespace, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.1f64..10.0);
            assert!((0.1..10.0).contains(&f));
            let i = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&i));
        }
    }

    #[test]
    fn float_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let (mut lo_seen, mut hi_seen) = (f64::MAX, f64::MIN);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0f64..1.0);
            lo_seen = lo_seen.min(v);
            hi_seen = hi_seen.max(v);
        }
        assert!(lo_seen < -0.9 && hi_seen > 0.9);
    }
}

//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro (with optional
//! `#![proptest_config(..)]` header), range strategies over integers and
//! floats, `any::<bool>()`, [`prop_assume!`] and [`prop_assert!`].
//!
//! Differences from upstream, by design of a small stub:
//!
//! * cases are drawn from a generator seeded by the test's module path and
//!   name — deterministic across runs, varied across tests;
//! * no shrinking: a failing case reports its input values verbatim (the
//!   deterministic seed makes it reproducible under a debugger);
//! * strategies are plain values implementing [`Strategy`], not the
//!   combinator tower.

use std::fmt::Debug;
use std::ops::Range;

/// Runner configuration; only `cases` is consulted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Accepted (non-rejected) cases to run per property.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections, as a multiple of `cases`.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 32,
            max_global_rejects: 50,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw a fresh case.
    Reject(String),
    /// A `prop_assert!` failed.
    Fail(String),
}

/// Deterministic per-test generator (SplitMix64 over an FNV-1a name hash).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the fully qualified test name.
    pub fn new(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next raw word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f` (the upstream `prop_map`
    /// combinator).
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Mapped strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Bounded, finite: the useful default for numeric properties.
        (rng.unit_f64() - 0.5) * 2.0e6
    }
}

/// Whole-domain strategy marker returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — strategy over `T`'s canonical domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Debug),+
        {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Strategies over collections (the `proptest::collection` subset in use:
/// `vec` with a length range).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy producing `Vec`s of `element` samples with a length drawn
    /// from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Reject the current case (resampled, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

/// Assert within a property; failure reports the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?}: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Define property tests. Supports the upstream grammar this workspace
/// uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]
///
///     #[test]
///     fn my_property(x in 0usize..10, flip in any::<bool>()) {
///         prop_assume!(x > 0);
///         prop_assert!(x < 10, "x = {x}");
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::new(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(config.max_global_rejects),
                    "prop_assume! rejected too many cases ({} attempts)",
                    attempts
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let values = {
                    let mut s = String::new();
                    $(
                        s.push_str(&format!("{} = {:?}; ", stringify!($arg), $arg));
                    )*
                    s
                };
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject(_)) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "property {} failed: {}\n  inputs: {}",
                        stringify!($name), msg, values
                    ),
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_assume(x in 1usize..50, f in -2.0f64..2.0, flip in any::<bool>()) {
            prop_assume!(x % 7 != 0);
            prop_assert!((1..50).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f), "f = {f}");
            let _ = flip;
        }
    }

    #[test]
    #[should_panic(expected = "property always_fails failed")]
    fn failure_reports_inputs() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x = {x} is not > 100");
            }
        }
        always_fails();
    }
}

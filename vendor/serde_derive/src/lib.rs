//! Offline stand-in for `serde_derive`.
//!
//! The workspace only *derives* `Serialize` to mark report types as
//! serialization-ready; nothing serializes them yet (the container has no
//! crates.io access, so real serde cannot be vendored wholesale). These
//! derives therefore expand to nothing: the marker trait in the companion
//! `serde` stub is blanket-implemented instead.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Cross-backend equivalence: the paper's Algorithm-Architecture Delay
//! Mapping promises that **one algorithm** runs unchanged on any machine.
//! After the runtime refactor that is literally true in code — the
//! simulated, threaded and work-stealing executors all drive the same
//! `dtm_core::runtime::NodeRuntime` — and this suite pins it down
//! behaviourally: every backend must converge to the direct Cholesky
//! solution of the same torn system, with live message/solve counters.

mod common;

use common::example_5_1_split;
use dtm_repro::core::rayon_backend::{self, RayonConfig};
use dtm_repro::core::report::BackendKind;
use dtm_repro::core::runtime::{CommonConfig, Termination};
use dtm_repro::core::solver::{self, ComputeModel, DtmConfig};
use dtm_repro::core::threaded::{self, ThreadedConfig};
use dtm_repro::core::{ImpedancePolicy, SolveReport};
use dtm_repro::graph::evs::SplitSystem;
use dtm_repro::simnet::{DelayModel, SimDuration, Topology};
use dtm_repro::sparse::generators;
use std::time::Duration;

/// A 2-D grid Laplacian torn into strips (this file's historical seed).
fn laplacian_split(side: usize, k: usize) -> SplitSystem {
    common::laplacian_split(side, k, 907)
}

fn common(impedance: ImpedancePolicy, tol: f64) -> CommonConfig {
    CommonConfig {
        impedance,
        termination: Termination::OracleRms { tol },
        ..Default::default()
    }
}

/// Run all three executors on `ss` and return their reports.
fn run_all_backends(ss: &SplitSystem, impedance: ImpedancePolicy, tol: f64) -> Vec<SolveReport> {
    let k = ss.n_parts();
    // Simulated machine: complete graph, 1 ms links.
    let topo = Topology::complete(k).with_delays(&DelayModel::fixed_ms(1.0));
    let sim = solver::solve(
        ss,
        topo,
        None,
        &DtmConfig {
            common: common(impedance.clone(), tol),
            compute: ComputeModel::Fixed(SimDuration::from_micros_f64(100.0)),
            horizon: SimDuration::from_millis_f64(3_600_000.0),
            ..Default::default()
        },
    )
    .expect("simulated backend runs");

    let threaded = threaded::solve(
        ss,
        &ThreadedConfig {
            common: common(impedance.clone(), tol),
            budget: Duration::from_secs(60),
            ..Default::default()
        },
    )
    .expect("threaded backend runs");

    let stealing = rayon_backend::solve(
        ss,
        &RayonConfig {
            common: common(impedance, tol),
            num_threads: 2,
            budget: Duration::from_secs(60),
            ..Default::default()
        },
    )
    .expect("work-stealing backend runs");

    vec![sim, threaded, stealing]
}

fn assert_all_close(reports: &[SolveReport], exact: &[f64], tol: f64) {
    for report in reports {
        assert!(
            report.converged,
            "{:?} did not converge (rms {})",
            report.backend, report.final_rms
        );
        for (i, (u, v)) in report.solution.iter().zip(exact).enumerate() {
            assert!(
                (u - v).abs() < tol,
                "{:?}: x[{i}] = {u} vs direct {v}",
                report.backend
            );
        }
        assert!(
            report.total_solves > 0,
            "{:?}: zero solves reported",
            report.backend
        );
        assert!(
            report.total_messages > 0,
            "{:?}: zero messages reported",
            report.backend
        );
    }
    assert_eq!(reports[0].backend, BackendKind::Simulated);
    assert_eq!(reports[1].backend, BackendKind::Threaded);
    assert_eq!(reports[2].backend, BackendKind::WorkStealing);
}

#[test]
fn example_5_1_equivalent_across_backends() {
    let ss = example_5_1_split();
    let (a, b) = generators::paper_example_system();
    let exact = dtm_repro::sparse::DenseCholesky::factor_csr(&a)
        .expect("SPD")
        .solve(&b);
    let reports = run_all_backends(&ss, ImpedancePolicy::PerDtlp(vec![0.2, 0.1]), 1e-9);
    assert_all_close(&reports, &exact, 1e-6);
}

#[test]
fn grid_laplacian_equivalent_across_backends() {
    let side = 10;
    let ss = laplacian_split(side, 3);
    let (a, b) = ss.reconstruct();
    let exact = dtm_repro::sparse::SparseCholesky::factor_rcm(&a)
        .expect("SPD")
        .solve(&b);
    let reports = run_all_backends(&ss, ImpedancePolicy::default(), 1e-8);
    assert_all_close(&reports, &exact, 1e-5);
    // The torn system must also satisfy the *original* equation.
    for report in &reports {
        assert!(
            a.residual_norm(&report.solution, &b) < 1e-4,
            "{:?}: residual {}",
            report.backend,
            a.residual_norm(&report.solution, &b)
        );
    }
}

#[test]
fn example_5_1_batched_k8_equivalent_across_backends() {
    // Block waves: 8 right-hand sides (the paper's own b plus 7 random
    // ones) solved simultaneously over one factorization per subdomain.
    // Every backend must deliver, per column, the direct solution of the
    // original matrix against that column.
    let ss = example_5_1_split();
    let (a, b) = generators::paper_example_system();
    let cols: Vec<Vec<f64>> = std::iter::once(b)
        .chain((0..7).map(|c| generators::random_rhs(4, 9_000 + c)))
        .collect();
    let direct = dtm_repro::sparse::DenseCholesky::factor_csr(&a).expect("SPD");
    let exact: Vec<Vec<f64>> = cols.iter().map(|c| direct.solve(c)).collect();
    let impedance = ImpedancePolicy::PerDtlp(vec![0.2, 0.1]);
    let tol = 1e-9;

    let topo = Topology::complete(2).with_delays(&DelayModel::fixed_ms(1.0));
    let sim = solver::solve_block(
        &ss,
        topo,
        &cols,
        None,
        &DtmConfig {
            common: common(impedance.clone(), tol),
            compute: ComputeModel::Fixed(SimDuration::from_micros_f64(100.0)),
            horizon: SimDuration::from_millis_f64(3_600_000.0),
            ..Default::default()
        },
    )
    .expect("simulated block run");
    let threaded = threaded::solve_block(
        &ss,
        &cols,
        None,
        &ThreadedConfig {
            common: common(impedance.clone(), tol),
            budget: Duration::from_secs(60),
            ..Default::default()
        },
    )
    .expect("threaded block run");
    let stealing = rayon_backend::solve_block(
        &ss,
        &cols,
        None,
        &RayonConfig {
            common: common(impedance, tol),
            num_threads: 2,
            budget: Duration::from_secs(60),
            ..Default::default()
        },
    )
    .expect("work-stealing block run");

    for report in [&sim, &threaded, &stealing] {
        assert!(
            report.converged,
            "{:?} did not converge (rms {})",
            report.backend, report.final_rms
        );
        assert_eq!(report.n_rhs, 8, "{:?}", report.backend);
        assert_eq!(report.solutions.len(), 8);
        assert_eq!(report.final_rms_per_rhs.len(), 8);
        assert_eq!(report.solution, report.solutions[0]);
        for (c, x) in report.solutions.iter().enumerate() {
            for (i, (u, v)) in x.iter().zip(&exact[c]).enumerate() {
                assert!(
                    (u - v).abs() < 1e-6,
                    "{:?} col {c} x[{i}]: {u} vs direct {v}",
                    report.backend
                );
            }
        }
    }
    assert_eq!(sim.backend, BackendKind::Simulated);
    assert_eq!(threaded.backend, BackendKind::Threaded);
    assert_eq!(stealing.backend, BackendKind::WorkStealing);
}

#[test]
fn local_delta_self_halt_equivalent_across_backends() {
    // The genuinely distributed stopping rule (Table 1 step 3.3) must end
    // every backend at the same fixed point, with every node self-halted.
    let ss = laplacian_split(8, 2);
    let (a, b) = ss.reconstruct();
    let exact = dtm_repro::sparse::SparseCholesky::factor_rcm(&a)
        .expect("SPD")
        .solve(&b);
    let term = Termination::LocalDelta {
        tol: 1e-12,
        patience: 3,
    };
    let topo = Topology::complete(2).with_delays(&DelayModel::fixed_ms(1.0));
    let sim = solver::solve(
        &ss,
        topo,
        None,
        &DtmConfig {
            common: CommonConfig {
                termination: term,
                ..Default::default()
            },
            compute: ComputeModel::Fixed(SimDuration::from_micros_f64(100.0)),
            horizon: SimDuration::from_millis_f64(3_600_000.0),
            ..Default::default()
        },
    )
    .expect("simulated");
    let threaded = threaded::solve(
        &ss,
        &ThreadedConfig {
            common: CommonConfig {
                termination: term,
                ..ThreadedConfig::default().common
            },
            budget: Duration::from_secs(60),
            ..Default::default()
        },
    )
    .expect("threaded");
    let stealing = rayon_backend::solve(
        &ss,
        &RayonConfig {
            common: CommonConfig {
                termination: term,
                ..RayonConfig::default().common
            },
            budget: Duration::from_secs(60),
            ..Default::default()
        },
    )
    .expect("work-stealing");
    for report in [&sim, &threaded, &stealing] {
        assert!(
            report.converged,
            "{:?}: stop {:?}, rms {}",
            report.backend, report.stop, report.final_rms
        );
        for (u, v) in report.solution.iter().zip(&exact) {
            assert!((u - v).abs() < 1e-6, "{:?}: {u} vs {v}", report.backend);
        }
    }
}

//! Multilevel wire tearing (paper §4, Fig. 6): vertices split into more
//! than two copies — block-partition cross points — with DTLP trees aligned
//! to the machine, end to end through the solver.

use dtm_repro::core::solver::{ComputeModel, Termination};
use dtm_repro::graph::evs::{split, EvsOptions, TwinTopology};
use dtm_repro::graph::validate;
use dtm_repro::graph::{partition, ElectricGraph, PartitionPlan};
use dtm_repro::simnet::{DelayModel, SimDuration, Topology};
use dtm_repro::sparse::generators;
use dtm_repro::DtmBuilder;
use std::collections::BTreeSet;

#[test]
fn block_partition_produces_multiway_splits() {
    let side = 9;
    let a = generators::grid2d_laplacian(side, side);
    let g = ElectricGraph::from_system(a, vec![0.0; side * side]).expect("symmetric");
    let asg = partition::grid_blocks(side, side, 3, 3);
    let plan = PartitionPlan::from_assignment(&g, &asg).expect("valid");
    let multi = plan
        .split_vertices()
        .filter(|&v| plan.owner(v).parts().len() >= 3)
        .count();
    assert!(multi > 0, "cross points must split ≥ 3 ways");
}

#[test]
fn chains_give_each_interior_copy_two_ports() {
    let side = 9;
    let a = generators::grid2d_laplacian(side, side);
    let b = vec![1.0; side * side];
    let g = ElectricGraph::from_system(a, b).expect("symmetric");
    let asg = partition::grid_blocks(side, side, 3, 3);
    let plan = PartitionPlan::from_assignment(&g, &asg).expect("valid");
    let ss = split(&g, &plan, &EvsOptions::default()).expect("splits");
    // A ≥3-way chain has an interior copy carrying 2 ports.
    let has_two_port_vertex = ss.subdomains.iter().any(|sd| {
        let mut counts = std::collections::HashMap::new();
        for p in &sd.ports {
            *counts.entry(p.local_vertex).or_insert(0usize) += 1;
        }
        counts.values().any(|&c| c >= 2)
    });
    assert!(has_two_port_vertex);
    validate::check_wiring(&ss).expect("wiring");
}

#[test]
fn multilevel_dtm_converges_on_3x3_processor_mesh() {
    let side = 15;
    let a = generators::grid2d_random(side, side, 1.0, 303);
    let b = generators::random_rhs(side * side, 304);
    let machine = Topology::mesh(3, 3).with_delays(&DelayModel::uniform_ms(10.0, 99.0, 5));
    let report = DtmBuilder::new(a.clone(), b.clone())
        .grid_blocks(side, side, 3, 3)
        .network(machine)
        .compute(ComputeModel::Fixed(SimDuration::from_millis_f64(1.0)))
        .termination(Termination::OracleRms { tol: 1e-8 })
        .horizon(SimDuration::from_millis_f64(3_600_000.0))
        .solve()
        .expect("valid problem");
    assert!(report.converged, "rms {}", report.final_rms);
    assert!(a.residual_norm(&report.solution, &b) < 1e-5);
}

#[test]
fn tree_within_never_uses_missing_links() {
    let side = 12;
    let a = generators::grid2d_laplacian(side, side);
    let g = ElectricGraph::from_system(a, vec![0.0; side * side]).expect("symmetric");
    let asg = partition::grid_blocks(side, side, 2, 3);
    let plan = PartitionPlan::from_assignment(&g, &asg).expect("valid");
    let machine = Topology::mesh(3, 2);
    let pairs: BTreeSet<(usize, usize)> = machine
        .links()
        .iter()
        .map(|l| (l.src.min(l.dst), l.src.max(l.dst)))
        .collect();
    let options = EvsOptions {
        twin_topology: TwinTopology::TreeWithin(pairs.clone()),
        ..Default::default()
    };
    let ss = split(&g, &plan, &options).expect("splits");
    for d in &ss.dtlps {
        let key = (d.a.part.min(d.b.part), d.a.part.max(d.b.part));
        assert!(pairs.contains(&key), "DTLP {key:?} has no machine link");
    }
}

#[test]
fn star_and_chain_topologies_converge_identically_in_the_limit() {
    // Different tree shapes change the iteration path but not the fixed
    // point.
    let side = 9;
    let a = generators::grid2d_random(side, side, 1.0, 305);
    let b = generators::random_rhs(side * side, 306);
    let g = ElectricGraph::from_system(a.clone(), b.clone()).expect("symmetric");
    let asg = partition::grid_blocks(side, side, 3, 3);
    let plan = PartitionPlan::from_assignment(&g, &asg).expect("valid");
    let mut solutions = Vec::new();
    for topo in [TwinTopology::Chain, TwinTopology::Star] {
        let options = EvsOptions {
            twin_topology: topo,
            ..Default::default()
        };
        let ss = split(&g, &plan, &options).expect("splits");
        let report = dtm_repro::core::vtm::solve(
            &ss,
            None,
            &dtm_repro::core::vtm::VtmConfig {
                tol: 1e-11,
                ..Default::default()
            },
        )
        .expect("vtm");
        assert!(report.converged);
        solutions.push(report.solution);
    }
    for (u, v) in solutions[0].iter().zip(&solutions[1]) {
        assert!((u - v).abs() < 1e-8);
    }
}

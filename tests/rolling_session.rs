//! Rolling-session equivalence: staggered mid-exchange admission must
//! produce the same answers as separate one-shot solves.
//!
//! The rolling subsystem admits right-hand sides into a **live** wave
//! exchange — a freshly admitted column starts from whatever stale
//! boundary waves are still in flight for the retired ticket it replaced.
//! Because each ticket only retires when the *exact* metric of the
//! gathered estimate meets its own tolerance, staleness may delay a stop
//! but can never corrupt a result: whatever the admission schedule, every
//! reported solution must agree (within its tolerance) with the direct
//! solution and with a separate one-shot solve of the same right-hand
//! side. Pinned here as proptests across all three executors.

mod common;

use dtm_repro::core::runtime::Termination;
use dtm_repro::core::DtmProblem;
use dtm_repro::simnet::SimDuration;
use dtm_repro::sparse::generators;
use proptest::prelude::*;
use std::time::Duration;

const SIDE: usize = 8;
const N: usize = SIDE * SIDE;

fn grid_problem() -> DtmProblem {
    common::grid_problem(SIDE, Termination::Residual { tol: 1e-8 })
}

/// The workload a case serves: seeded right-hand sides with alternating
/// stopping rules (mixed tolerances in one session).
fn workload(seed: u64, count: usize, tol: f64) -> Vec<(Vec<f64>, Termination)> {
    (0..count)
        .map(|i| {
            let b = generators::random_rhs(N, seed.wrapping_mul(31).wrapping_add(i as u64));
            let termination = if i % 2 == 0 {
                Termination::Residual { tol }
            } else {
                Termination::OracleRms { tol }
            };
            (b, termination)
        })
        .collect()
}

/// Direct solutions of the reconstructed system — the one-shot target.
fn direct_solutions(problem: &DtmProblem, work: &[(Vec<f64>, Termination)]) -> Vec<Vec<f64>> {
    let (a, _) = problem.split.reconstruct();
    let factor = dtm_repro::sparse::SparseCholesky::factor_rcm(&a).expect("SPD");
    work.iter().map(|(b, _)| factor.solve(b)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Simulated machine: random staggering between submissions (including
    /// zero gaps — several tickets racing into the same exchange) must not
    /// change any ticket's answer beyond its tolerance.
    #[test]
    fn sim_rolling_staggered_equals_one_shot(
        seed in 0u64..1_000,
        gaps in proptest::collection::vec(0u8..3, 2..5),
    ) {
        let problem = grid_problem();
        let work = workload(seed, gaps.len(), 1e-8);
        let direct = direct_solutions(&problem, &work);
        let mut session = problem.rolling(2).expect("builds");
        let mut tickets = Vec::new();
        for ((b, termination), gap) in work.iter().zip(&gaps) {
            tickets.push(session.submit(b, *termination).expect("admissible"));
            // Staggered admission: let the live exchange run between
            // submissions (0 = race the next ticket in immediately).
            if *gap > 0 {
                let _ = session.run_for(SimDuration::from_millis_f64(*gap as f64 * 5.0));
            }
        }
        let reports = session.drain_for(SimDuration::from_millis_f64(600_000.0));
        prop_assert_eq!(reports.len(), work.len());
        for (i, ticket) in tickets.iter().enumerate() {
            let r = reports.iter().find(|r| r.ticket == *ticket).expect("reported");
            // Within-tolerance agreement with the direct one-shot answer:
            // a 1e-8 stop on this well-conditioned Laplacian leaves the
            // solutions equal to ~1e-6.
            for (u, v) in r.solution.iter().zip(&direct[i]) {
                prop_assert!(
                    (u - v).abs() < 1e-5,
                    "ticket {} entry: rolling {} vs one-shot {}", i, u, v
                );
            }
            prop_assert!(r.final_residual.is_finite());
        }
    }

    /// The rolling answer also matches a separate one-shot *DTM* solve of
    /// the same right-hand side through the batch session API (factor
    /// shared, fresh exchange per solve) — not just the direct oracle.
    #[test]
    fn sim_rolling_matches_separate_one_shot_dtm_solves(
        seed in 0u64..1_000,
    ) {
        let problem = grid_problem();
        let work = workload(seed, 3, 1e-8);
        // Separate one-shot solves: one exchange per RHS, batch barrier of 1.
        let mut one_shot = problem.session().expect("factors once");
        let mut singles = Vec::new();
        for (b, _) in &work {
            one_shot.push_rhs(b).expect("dimension ok");
            let report = one_shot.solve_batch().expect("converges");
            prop_assert!(report.converged);
            singles.push(report.solution.clone());
        }
        // Rolling: all three race into two slots of one live exchange.
        let mut session = problem.rolling(2).expect("builds");
        let mut tickets = Vec::new();
        for (b, termination) in &work {
            tickets.push(session.submit(b, *termination).expect("admissible"));
        }
        let reports = session.drain_for(SimDuration::from_millis_f64(600_000.0));
        prop_assert_eq!(reports.len(), work.len());
        for (i, ticket) in tickets.iter().enumerate() {
            let r = reports.iter().find(|r| r.ticket == *ticket).expect("reported");
            for (u, v) in r.solution.iter().zip(&singles[i]) {
                prop_assert!(
                    (u - v).abs() < 2e-5,
                    "ticket {} entry: rolling {} vs one-shot DTM {}", i, u, v
                );
            }
        }
    }
}

proptest! {
    // Real executors are wall-clock bound; fewer cases keep the suite fast.
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    /// Threaded executor: staggered real-time admission, same contract.
    #[test]
    fn threaded_rolling_staggered_equals_one_shot(
        seed in 0u64..1_000,
        stagger in proptest::collection::vec(0u8..2, 2..4),
    ) {
        let problem = grid_problem();
        let work = workload(seed, stagger.len(), 1e-7);
        let direct = direct_solutions(&problem, &work);
        let mut session = problem.rolling_threaded(2).expect("spawns");
        let mut tickets = Vec::new();
        for ((b, termination), gap) in work.iter().zip(&stagger) {
            tickets.push(session.submit(b, *termination).expect("admissible"));
            if *gap > 0 {
                std::thread::sleep(Duration::from_millis(*gap as u64));
            }
        }
        let reports = session.drain(Duration::from_secs(60));
        session.finish();
        prop_assert_eq!(reports.len(), work.len());
        for (i, ticket) in tickets.iter().enumerate() {
            let r = reports.iter().find(|r| r.ticket == *ticket).expect("reported");
            for (u, v) in r.solution.iter().zip(&direct[i]) {
                prop_assert!(
                    (u - v).abs() < 1e-4,
                    "ticket {} entry: rolling {} vs one-shot {}", i, u, v
                );
            }
        }
    }

    /// Work-stealing executor: same contract on the pool.
    #[test]
    fn workstealing_rolling_staggered_equals_one_shot(
        seed in 0u64..1_000,
        stagger in proptest::collection::vec(0u8..2, 2..4),
    ) {
        let problem = grid_problem();
        let work = workload(seed, stagger.len(), 1e-7);
        let direct = direct_solutions(&problem, &work);
        let mut session = problem.rolling_workstealing(2, 2).expect("spawns");
        let mut tickets = Vec::new();
        for ((b, termination), gap) in work.iter().zip(&stagger) {
            tickets.push(session.submit(b, *termination).expect("admissible"));
            if *gap > 0 {
                std::thread::sleep(Duration::from_millis(*gap as u64));
            }
        }
        let reports = session.drain(Duration::from_secs(60));
        session.finish();
        prop_assert_eq!(reports.len(), work.len());
        for (i, ticket) in tickets.iter().enumerate() {
            let r = reports.iter().find(|r| r.ticket == *ticket).expect("reported");
            for (u, v) in r.solution.iter().zip(&direct[i]) {
                prop_assert!(
                    (u - v).abs() < 1e-4,
                    "ticket {} entry: rolling {} vs one-shot {}", i, u, v
                );
            }
        }
    }
}

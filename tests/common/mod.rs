//! Shared integration-test fixtures: the paper's Example 5.1 split, the
//! grid Laplacian / random-conductance splits, and the builder-level grid
//! problem — deduplicated from the copies that used to be inlined across
//! `backend_equivalence.rs`, `rolling_session.rs`,
//! `residual_termination.rs` and friends. Each test binary compiles its
//! own copy of this module (`mod common;`), so unused helpers per binary
//! are expected.
#![allow(dead_code)]

use dtm_repro::core::runtime::Termination;
use dtm_repro::core::{DtmBuilder, DtmProblem};
use dtm_repro::graph::evs::{paper_example_shares, split, EvsOptions, SplitSystem};
use dtm_repro::graph::{partition, ElectricGraph, PartitionPlan};
use dtm_repro::sparse::{generators, Csr};

/// The paper's Example 4.1/5.1 split of system (3.2): two subdomains,
/// explicit source shares (Z₂ = 0.2, Z₃ = 0.1 are chosen by the caller's
/// impedance policy).
pub fn example_5_1_split() -> SplitSystem {
    let (a, b) = generators::paper_example_system();
    let g = ElectricGraph::from_system(a, b).expect("symmetric");
    let plan = PartitionPlan::from_assignment(&g, &[0, 0, 1, 1]).expect("valid");
    let options = EvsOptions {
        explicit: paper_example_shares(),
        ..Default::default()
    };
    split(&g, &plan, &options).expect("paper split")
}

/// A `side × side` 2-D grid Laplacian with a seeded random right-hand
/// side, torn into `parts` strips.
pub fn laplacian_split(side: usize, parts: usize, rhs_seed: u64) -> SplitSystem {
    let a = generators::grid2d_laplacian(side, side);
    let b = generators::random_rhs(side * side, rhs_seed);
    let g = ElectricGraph::from_system(a, b).expect("symmetric");
    let plan = PartitionPlan::from_assignment(&g, &partition::grid_strips(side, side, parts))
        .expect("valid");
    split(&g, &plan, &EvsOptions::default()).expect("splits")
}

/// The EVS split of [`random_grid_system`]'s exact triple — the baselines
/// partition the raw system, DTM tears this split; both views solve the
/// same `A x = b` by construction.
pub fn random_grid_split(side: usize, parts: usize, seed: u64) -> SplitSystem {
    let (a, b, asg) = random_grid_system(side, parts, seed);
    let g = ElectricGraph::from_system(a, b).expect("symmetric");
    let plan = PartitionPlan::from_assignment(&g, &asg).expect("valid");
    split(&g, &plan, &EvsOptions::default()).expect("splits")
}

/// Direct solution of the split's reconstructed system, computed by the
/// TEST (the solver under test never sees it). Returns `(x*, b)`.
pub fn direct_solution(ss: &SplitSystem) -> (Vec<f64>, Vec<f64>) {
    let (a, b) = ss.reconstruct();
    let x = dtm_repro::sparse::SparseCholesky::factor_rcm(&a)
        .expect("SPD")
        .solve(&b);
    (x, b)
}

/// The builder-level `side × side` grid-Laplacian problem torn 2×2 (unit
/// right-hand side) under `termination` — the rolling-session and
/// baseline-equivalence workload.
pub fn grid_problem(side: usize, termination: Termination) -> DtmProblem {
    let a = generators::grid2d_laplacian(side, side);
    DtmBuilder::new(a, vec![1.0; side * side])
        .grid_blocks(side, side, 2, 2)
        .termination(termination)
        .build()
        .expect("builds")
}

/// A seeded random-conductance grid system (not split): the raw
/// `(A, b, strip assignment)` triple the point baselines partition
/// directly.
pub fn random_grid_system(side: usize, parts: usize, seed: u64) -> (Csr, Vec<f64>, Vec<usize>) {
    let a = generators::grid2d_random(side, side, 1.0, seed);
    let b = generators::random_rhs(side * side, seed + 1);
    let asg = partition::grid_strips(side, side, parts);
    (a, b, asg)
}

//! Reference-free residual termination, end to end.
//!
//! `Termination::Residual` is the production stopping rule: no direct
//! solve of the original system is ever performed — the monitor tracks the
//! relative true residual `‖b − A·x‖₂ / ‖b‖₂` incrementally. This suite
//! pins down:
//!
//! * the incremental tracker agrees with an exact recomputation to ~1e-12
//!   across random update orders and values (proptest);
//! * all three executors solve Example 5.1 and the grid Laplacian under
//!   `Termination::Residual` with **no reference** (the report's RMS
//!   fields are `NaN`/empty — structural evidence no oracle ran), stopping
//!   within the configured residual tolerance — verified against a direct
//!   solve computed *in the test only*;
//! * a residual-terminated run and an oracle-RMS run stop at solutions
//!   agreeing to the configured tolerance.

mod common;

use common::{direct_solution, example_5_1_split};
use dtm_repro::core::monitor::Monitor;
use dtm_repro::core::rayon_backend::{self, RayonConfig};
use dtm_repro::core::runtime::{CommonConfig, Termination};
use dtm_repro::core::solver::{self, ComputeModel, DtmConfig};
use dtm_repro::core::threaded::{self, ThreadedConfig};
use dtm_repro::core::{DtmBuilder, ImpedancePolicy, SolveReport};
use dtm_repro::graph::evs::SplitSystem;
use dtm_repro::simnet::{DelayModel, SimDuration, SimTime, Topology};
use dtm_repro::sparse::generators;
use proptest::prelude::*;
use std::time::Duration;

fn laplacian_split(side: usize, n_parts: usize) -> SplitSystem {
    common::laplacian_split(side, n_parts, 1_907)
}

/// A reference-free report must carry no oracle numbers: that is the
/// structural evidence `reference_solutions` never ran.
fn assert_reference_free(report: &SolveReport) {
    assert!(
        report.final_rms.is_nan(),
        "reference-free run must not report an oracle RMS (got {})",
        report.final_rms
    );
    assert!(report.final_rms_per_rhs.is_empty());
    assert!(report.final_residual.is_finite());
    assert_eq!(report.final_residual_per_rhs.len(), report.n_rhs);
}

#[test]
fn simulated_backend_residual_solves_example_5_1_without_oracle() {
    let ss = example_5_1_split();
    let topo = Topology::complete(2).with_delays(&DelayModel::fixed_ms(1.0));
    let tol = 1e-9;
    let config = DtmConfig {
        common: CommonConfig {
            impedance: ImpedancePolicy::PerDtlp(vec![0.2, 0.1]),
            termination: Termination::Residual { tol },
            ..Default::default()
        },
        compute: ComputeModel::Fixed(SimDuration::from_micros_f64(10.0)),
        horizon: SimDuration::from_millis_f64(10_000.0),
        ..Default::default()
    };
    let report = solver::solve(&ss, topo, None, &config).expect("residual run");
    assert!(report.converged, "resid {}", report.final_residual);
    assert!(report.final_residual <= tol);
    assert_reference_free(&report);
    // Verified against a direct solve in the test only.
    let (exact, _) = direct_solution(&ss);
    for (u, v) in report.solution.iter().zip(&exact) {
        assert!((u - v).abs() < 1e-7, "{u} vs {v}");
    }
}

#[test]
fn threaded_backend_residual_solves_grid_without_oracle() {
    let ss = laplacian_split(8, 3);
    let tol = 1e-7;
    let config = ThreadedConfig {
        common: CommonConfig {
            termination: Termination::Residual { tol },
            ..ThreadedConfig::default().common
        },
        budget: Duration::from_secs(60),
        ..Default::default()
    };
    let report = threaded::solve(&ss, &config).expect("threaded residual run");
    assert!(report.converged, "resid {}", report.final_residual);
    assert_reference_free(&report);
    let (a, b) = ss.reconstruct();
    assert!(a.residual_norm(&report.solution, &b) < tol * 10.0 * b.len() as f64);
}

#[test]
fn workstealing_backend_residual_solves_grid_without_oracle() {
    let ss = laplacian_split(8, 3);
    let tol = 1e-7;
    let config = RayonConfig {
        common: CommonConfig {
            termination: Termination::Residual { tol },
            ..RayonConfig::default().common
        },
        num_threads: 2,
        budget: Duration::from_secs(60),
        ..Default::default()
    };
    let report = rayon_backend::solve(&ss, &config).expect("rayon residual run");
    assert!(report.converged, "resid {}", report.final_residual);
    assert_reference_free(&report);
}

#[test]
fn zero_rhs_column_falls_back_to_absolute_residual() {
    // Regression: an all-zero right-hand side has ‖b‖ = 0, so a naive
    // relative residual is NaN — a never- (or instantly-) terminating
    // column. The monitor must fall back to the ABSOLUTE residual (scale
    // saturates to 1): the zero column is solved exactly by x = 0 from
    // the start, never poisons the block metric with NaN, and the run
    // stops when the *other* column meets the tolerance.
    let ss = laplacian_split(6, 2);
    let topo = Topology::ring(2).with_delays(&DelayModel::fixed_ms(1.0));
    let tol = 1e-8;
    let config = DtmConfig {
        common: CommonConfig {
            termination: Termination::Residual { tol },
            ..Default::default()
        },
        compute: ComputeModel::Fixed(SimDuration::from_micros_f64(100.0)),
        horizon: SimDuration::from_millis_f64(3_600_000.0),
        ..Default::default()
    };
    let zero = vec![0.0; 36];
    let b1 = generators::random_rhs(36, 991);
    let report = solver::solve_block(
        &ss,
        topo.clone(),
        &[zero.clone(), b1.clone()],
        None,
        &config,
    )
    .expect("block run with a zero column");
    assert!(report.converged, "resid {}", report.final_residual);
    assert_reference_free(&report);
    assert!(
        report.final_residual_per_rhs[0].is_finite(),
        "zero column must never be NaN, got {}",
        report.final_residual_per_rhs[0]
    );
    assert!(report.final_residual_per_rhs[0] <= tol);
    assert!(report.final_residual_per_rhs[1] <= tol);
    for v in &report.solutions[0] {
        assert!(v.abs() < 1e-9, "zero RHS solves to zero, got {v}");
    }
    let (a, _) = ss.reconstruct();
    assert!(a.residual_norm(&report.solutions[1], &b1) < 1e-5);

    // The degenerate all-zero single-RHS solve also terminates cleanly
    // (instantly: x = 0 already meets any tolerance) instead of NaN-looping
    // to the horizon.
    let degenerate = solver::solve_block(&ss, topo, &[zero], None, &config).expect("zero run");
    assert!(degenerate.converged);
    assert_eq!(degenerate.final_residual, 0.0);
}

#[test]
fn residual_and_oracle_modes_agree_on_the_solution() {
    // The equivalence case: a residual-terminated run and an oracle-RMS
    // run must stop at solutions agreeing to the configured tolerance.
    let ss = laplacian_split(8, 2);
    let topo = Topology::ring(2).with_delays(&DelayModel::fixed_ms(1.0));
    let tol = 1e-9;
    let base = DtmConfig {
        compute: ComputeModel::Fixed(SimDuration::from_micros_f64(100.0)),
        horizon: SimDuration::from_millis_f64(3_600_000.0),
        ..Default::default()
    };
    let residual = solver::solve(
        &ss,
        topo.clone(),
        None,
        &DtmConfig {
            common: CommonConfig {
                termination: Termination::Residual { tol },
                ..Default::default()
            },
            ..base.clone()
        },
    )
    .expect("residual run");
    let oracle = solver::solve(
        &ss,
        topo,
        None,
        &DtmConfig {
            common: CommonConfig {
                termination: Termination::OracleRms { tol },
                ..Default::default()
            },
            ..base
        },
    )
    .expect("oracle run");
    assert!(residual.converged && oracle.converged);
    assert_reference_free(&residual);
    assert!(oracle.final_rms <= tol);
    // Both runs also report the always-computable residual; the oracle
    // run's must be finite and small too.
    assert!(oracle.final_residual < 1e-6);
    for (u, v) in residual.solution.iter().zip(&oracle.solution) {
        assert!((u - v).abs() < 1e-6, "residual-stop {u} vs oracle-stop {v}");
    }
}

#[test]
fn explicit_reference_under_residual_keeps_residual_stopping() {
    // Supplying a reference under Termination::Residual must not switch
    // the stopping metric to oracle RMS (all backends stop on the
    // residual for identical inputs); the reference only adds RMS
    // reporting to the run.
    let ss = laplacian_split(8, 2);
    let topo = Topology::ring(2).with_delays(&DelayModel::fixed_ms(1.0));
    let tol = 1e-8;
    let (exact, _) = direct_solution(&ss);
    let config = DtmConfig {
        common: CommonConfig {
            termination: Termination::Residual { tol },
            ..Default::default()
        },
        compute: ComputeModel::Fixed(SimDuration::from_micros_f64(100.0)),
        horizon: SimDuration::from_millis_f64(3_600_000.0),
        ..Default::default()
    };
    let report = solver::solve(&ss, topo, Some(exact), &config).expect("runs");
    assert!(report.converged, "resid {}", report.final_residual);
    assert!(
        report.final_residual <= tol,
        "stopped on the residual metric"
    );
    // RMS reporting is present (the reference was used for reporting)…
    assert!(!report.final_rms.is_nan());
    assert_eq!(report.final_rms_per_rhs.len(), 1);
    assert!(report.final_rms < 1e-6);
}

#[test]
fn residual_block_session_streams_without_any_direct_solve() {
    // A residual-mode streaming session: no reference factorization at
    // setup, no oracle substitutions per batch — and the batch still
    // converges to per-column solutions matching the direct answers.
    let side = 8;
    let a = generators::grid2d_laplacian(side, side);
    let b = generators::random_rhs(side * side, 2_024);
    let problem = DtmBuilder::new(a.clone(), b)
        .grid_blocks(side, side, 2, 2)
        .termination(Termination::Residual { tol: 1e-8 })
        .build()
        .expect("builds");
    assert!(
        problem.reference.is_none(),
        "residual problems must not compute a build-time reference"
    );
    let mut session = problem.session().expect("factors subdomains only");
    let cols: Vec<Vec<f64>> = (0..3)
        .map(|c| generators::random_rhs(side * side, 3_000 + c))
        .collect();
    for col in &cols {
        session.push_rhs(col).expect("dimension ok");
    }
    let report = session.solve_batch().expect("batch converges");
    assert!(report.converged, "resid {}", report.final_residual);
    assert_eq!(report.n_rhs, 3);
    assert_reference_free(&report);
    for (x, col) in report.solutions.iter().zip(&cols) {
        assert!(a.residual_norm(x, col) < 1e-5);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The incremental residual tracker must match an exact recomputation
    /// (`‖b − A·est‖/‖b‖` from scratch) to ~1e-12, whatever order parts
    /// report in and whatever values they carry.
    #[test]
    fn incremental_residual_matches_exact_recompute(
        updates in proptest::collection::vec((0usize..3, -10.0f64..10.0, 0.1f64..3.0), 1..40),
    ) {
        let ss = laplacian_split(6, 3);
        let (a, b) = ss.reconstruct();
        let bnorm = dtm_repro::sparse::vector::norm2(&b);
        let mut m = Monitor::new_residual(&ss, None, SimDuration::ZERO);
        for (i, &(part, base, scale)) in updates.iter().enumerate() {
            let nl = ss.subdomains[part].n_local();
            let local: Vec<f64> = (0..nl)
                .map(|l| base + scale * ((l as f64) * 0.7 + i as f64).sin())
                .collect();
            m.update_part(part, SimTime::from_nanos(i as u64), &local);
            let exact = a.residual_norm(m.estimate(), &b) / bnorm;
            prop_assert!(
                (m.rel_residual() - exact).abs() < 1e-12 * exact.max(1.0),
                "incremental {} vs exact {} after update {}",
                m.rel_residual(), exact, i
            );
        }
        // The exact-recompute API agrees as well.
        let exact = a.residual_norm(m.estimate(), &b) / bnorm;
        prop_assert!((m.residual_exact_per_rhs()[0] - exact).abs() < 1e-13 * exact.max(1.0));
    }

    /// Block form: the worst column drives the metric, and every column's
    /// incremental value matches its exact recomputation.
    #[test]
    fn incremental_block_residual_matches_exact_per_column(
        seed in 0u64..1000,
        rounds in 1usize..6,
    ) {
        let ss = laplacian_split(6, 2);
        let (a, _) = ss.reconstruct();
        let cols: Vec<Vec<f64>> = (0..3).map(|c| generators::random_rhs(36, seed * 7 + c)).collect();
        let mut m = Monitor::new_residual(&ss, Some(&cols), SimDuration::ZERO);
        for r in 0..rounds {
            for (p, sd) in ss.subdomains.iter().enumerate() {
                let nl = sd.n_local();
                let block: Vec<f64> = (0..nl * 3)
                    .map(|i| ((i + r + p) as f64 * 0.31).cos())
                    .collect();
                m.update_part(p, SimTime::from_nanos((r * 10 + p) as u64), &block);
            }
        }
        let per = m.residual_exact_per_rhs();
        for (c, col) in cols.iter().enumerate() {
            let bnorm = dtm_repro::sparse::vector::norm2(col);
            let exact = a.residual_norm(m.estimate_col(c), col) / bnorm;
            prop_assert!((per[c] - exact).abs() < 1e-12 * exact.max(1.0), "column {c}");
        }
        let worst = per.iter().fold(0.0f64, |acc, &v| acc.max(v));
        prop_assert!((m.rel_residual() - worst).abs() < 1e-9 * worst.max(1.0));
    }
}

//! Cross-solver agreement: every path to a solution — direct Cholesky
//! (dense & sparse), CG, SOR, DTM (simulated, threaded & work-stealing),
//! VTM, and both block-Jacobi baselines — must land on the same x* for
//! the same system.

use dtm_repro::core::baselines::{self, BlockJacobiConfig};
use dtm_repro::core::rayon_backend::{self, RayonConfig};
use dtm_repro::core::runtime::CommonConfig;
use dtm_repro::core::solver::{ComputeModel, Termination};
use dtm_repro::core::threaded::{self, ThreadedConfig};
use dtm_repro::core::vtm::{self, VtmConfig};
use dtm_repro::graph::evs::{split, EvsOptions};
use dtm_repro::graph::{partition, ElectricGraph, PartitionPlan};
use dtm_repro::simnet::{DelayModel, SimDuration, Topology};
use dtm_repro::sparse::solvers::{cg, sor, IterConfig};
use dtm_repro::sparse::{generators, DenseCholesky, SparseCholesky};
use dtm_repro::DtmBuilder;
use std::time::Duration;

const SIDE: usize = 12;
const K: usize = 3;

fn system() -> (dtm_repro::sparse::Csr, Vec<f64>) {
    let a = generators::grid2d_random(SIDE, SIDE, 1.0, 404);
    let b = generators::random_rhs(SIDE * SIDE, 405);
    (a, b)
}

fn assert_close(name: &str, x: &[f64], y: &[f64], tol: f64) {
    for (i, (u, v)) in x.iter().zip(y).enumerate() {
        assert!((u - v).abs() < tol, "{name}: x[{i}] = {u} vs reference {v}");
    }
}

#[test]
fn all_solvers_agree() {
    let (a, b) = system();
    let reference = SparseCholesky::factor_rcm(&a).expect("SPD").solve(&b);

    // Dense direct.
    let xd = DenseCholesky::factor_csr(&a).expect("SPD").solve(&b);
    assert_close("dense cholesky", &xd, &reference, 1e-9);

    // Krylov + stationary.
    let xcg = cg::solve(&a, &b, &IterConfig::with_rtol(1e-12));
    assert!(xcg.converged);
    assert_close("cg", &xcg.x, &reference, 1e-7);
    let xsor = sor::solve(&a, &b, 1.5, &IterConfig::with_rtol(1e-12).max_iter(100_000));
    assert!(xsor.converged);
    assert_close("sor", &xsor.x, &reference, 1e-6);

    // DTM (simulated).
    let dtm = DtmBuilder::new(a.clone(), b.clone())
        .grid_strips(SIDE, SIDE, K)
        .termination(Termination::OracleRms { tol: 1e-9 })
        .solve()
        .expect("dtm");
    assert!(dtm.converged);
    assert_close("dtm", &dtm.solution, &reference, 1e-6);

    // VTM.
    let g = ElectricGraph::from_system(a.clone(), b.clone()).expect("symmetric");
    let plan =
        PartitionPlan::from_assignment(&g, &partition::grid_strips(SIDE, SIDE, K)).expect("valid");
    let ss = split(&g, &plan, &EvsOptions::default()).expect("valid");
    let v = vtm::solve(
        &ss,
        Some(reference.clone()),
        &VtmConfig {
            tol: 1e-9,
            ..Default::default()
        },
    )
    .expect("vtm");
    assert!(v.converged);
    assert_close("vtm", &v.solution, &reference, 1e-6);

    // Threaded DTM.
    let t = threaded::solve(
        &ss,
        &ThreadedConfig {
            common: CommonConfig {
                termination: Termination::OracleRms { tol: 1e-9 },
                ..ThreadedConfig::default().common
            },
            budget: Duration::from_secs(60),
            ..Default::default()
        },
    )
    .expect("threads");
    assert!(t.converged);
    assert_close("threaded dtm", &t.solution, &reference, 1e-6);

    // Work-stealing DTM.
    let w = rayon_backend::solve(
        &ss,
        &RayonConfig {
            common: CommonConfig {
                termination: Termination::OracleRms { tol: 1e-9 },
                ..RayonConfig::default().common
            },
            budget: Duration::from_secs(60),
            ..Default::default()
        },
    )
    .expect("work-stealing pool");
    assert!(w.converged);
    assert_close("work-stealing dtm", &w.solution, &reference, 1e-6);

    // Block-Jacobi baselines.
    let asg = partition::grid_strips(SIDE, SIDE, K);
    let topo = Topology::ring(K).with_delays(&DelayModel::uniform_ms(5.0, 30.0, 11));
    let bj_config = BlockJacobiConfig {
        compute: ComputeModel::Fixed(SimDuration::from_millis_f64(1.0)),
        termination: Termination::OracleRms { tol: 1e-9 },
        horizon: SimDuration::from_millis_f64(3_600_000.0),
        ..Default::default()
    };
    let abj = baselines::solve_async(
        &a,
        &b,
        &asg,
        topo.clone(),
        Some(reference.clone()),
        &bj_config,
    )
    .expect("abj");
    assert!(abj.converged);
    assert_close("async block-jacobi", &abj.solution, &reference, 1e-6);
    let sbj = baselines::solve_sync(&a, &b, &asg, &topo, Some(reference.clone()), &bj_config)
        .expect("sbj");
    assert!(sbj.converged);
    assert_close("sync block-jacobi", &sbj.solution, &reference, 1e-6);
}

#[test]
fn dtm_beats_async_jacobi_in_simulated_time() {
    // The paper's motivation: classical asynchronous iterations converge,
    // but slowly; DTM's impedance coupling accelerates the same machine.
    let (a, b) = system();
    let topo = Topology::ring(K).with_delays(&DelayModel::uniform_ms(10.0, 99.0, 3));
    let tol = 1e-7;

    let dtm = DtmBuilder::new(a.clone(), b.clone())
        .grid_strips(SIDE, SIDE, K)
        .network(topo.clone())
        .compute(ComputeModel::Fixed(SimDuration::from_millis_f64(1.0)))
        .termination(Termination::OracleRms { tol })
        .horizon(SimDuration::from_millis_f64(3_600_000.0))
        .solve()
        .expect("dtm");

    let bj_config = BlockJacobiConfig {
        compute: ComputeModel::Fixed(SimDuration::from_millis_f64(1.0)),
        termination: Termination::OracleRms { tol },
        horizon: SimDuration::from_millis_f64(3_600_000.0),
        ..Default::default()
    };
    let asg = partition::grid_strips(SIDE, SIDE, K);
    let abj = baselines::solve_async(&a, &b, &asg, topo, None, &bj_config).expect("abj");

    assert!(dtm.converged && abj.converged);
    assert!(
        dtm.final_time_ms < abj.final_time_ms,
        "DTM {} ms should beat async block-Jacobi {} ms",
        dtm.final_time_ms,
        abj.final_time_ms
    );
}

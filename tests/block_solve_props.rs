//! Block–scalar equivalence properties for multi-RHS solves.
//!
//! The block-wave design rests on one invariant: the columns of a K-RHS
//! solve never interact. Each column's waves undergo exactly the scalar
//! arithmetic (the kernels are bitwise column-stacks of the scalar
//! substitutions, the wave payloads carry one value per column), so a
//! K-column block solve must equal K independent scalar solves column for
//! column — on every backend. These properties pin that down on random SPD
//! systems.

mod common;

use common::random_grid_split as grid_split;
use dtm_repro::core::rayon_backend::{self, RayonConfig};
use dtm_repro::core::runtime::{CommonConfig, Termination};
use dtm_repro::core::solver::{self, ComputeModel, DtmConfig};
use dtm_repro::core::threaded::{self, ThreadedConfig};
use dtm_repro::simnet::{DelayModel, SimDuration, Topology};
use dtm_repro::sparse::generators;
use proptest::prelude::*;
use std::time::Duration;

fn sim_config(tol: f64) -> DtmConfig {
    DtmConfig {
        common: CommonConfig {
            termination: Termination::OracleRms { tol },
            ..Default::default()
        },
        compute: ComputeModel::Fixed(SimDuration::from_micros_f64(100.0)),
        horizon: SimDuration::from_millis_f64(3_600_000.0),
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Kernel level: the block substitution of both Cholesky factors is a
    /// bitwise column-stack of scalar substitutions on random SPD systems.
    #[test]
    fn block_substitution_is_bitwise_scalar_stack(
        side in 3usize..8,
        k in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let a = generators::grid2d_random(side, side, 1.0, seed);
        let n = a.n_rows();
        let cols: Vec<Vec<f64>> = (0..k)
            .map(|c| generators::random_rhs(n, seed + 10 + c as u64))
            .collect();
        let dense = dtm_repro::sparse::DenseCholesky::factor_csr(&a).expect("SPD");
        let sparse = dtm_repro::sparse::SparseCholesky::factor_rcm(&a).expect("SPD");
        let mut dense_block: Vec<f64> = cols.iter().flatten().copied().collect();
        let mut sparse_block = dense_block.clone();
        dense.solve_block_in_place(&mut dense_block, k);
        sparse.solve_block_in_place(&mut sparse_block, k);
        for (c, col) in cols.iter().enumerate() {
            let mut xd = col.clone();
            dense.solve_in_place(&mut xd);
            prop_assert_eq!(&dense_block[c * n..(c + 1) * n], &xd[..]);
            let mut xs = col.clone();
            sparse.solve_in_place(&mut xs);
            prop_assert_eq!(&sparse_block[c * n..(c + 1) * n], &xs[..]);
        }
    }

    /// Simulated backend on random SPD systems: a K-column block run
    /// matches K independent scalar runs column for column (both driven
    /// two orders below the comparison tolerance; only the stopping
    /// instant differs — the deterministic Example 5.1 test below pins the
    /// bitwise version, where identical horizons make the runs replay the
    /// same schedule).
    #[test]
    fn simnet_block_equals_k_scalar_runs(
        side in 4usize..7,
        k in 2usize..5,
        seed in 0u64..1_000,
    ) {
        let ss = grid_split(side, 2, seed);
        let n = side * side;
        let cols: Vec<Vec<f64>> = (0..k)
            .map(|c| generators::random_rhs(n, seed + 100 + c as u64))
            .collect();
        let topo = || Topology::ring(2).with_delays(&DelayModel::fixed_ms(1.0));
        let config = sim_config(1e-8);
        let block = solver::solve_block(&ss, topo(), &cols, None, &config).expect("block run");
        prop_assert!(block.converged, "block rms {}", block.final_rms);
        prop_assert_eq!(block.n_rhs, k);
        for (c, col) in cols.iter().enumerate() {
            let scalar = solver::solve_block(
                &ss,
                topo(),
                std::slice::from_ref(col),
                None,
                &config,
            )
            .expect("scalar run");
            prop_assert!(scalar.converged, "scalar col {c} rms {}", scalar.final_rms);
            for (i, (u, v)) in block.solutions[c].iter().zip(&scalar.solution).enumerate() {
                prop_assert!(
                    (u - v).abs() < 1e-6,
                    "col {c} x[{i}]: block {u} vs scalar {v}"
                );
            }
        }
    }
}

/// The acceptance-grade equivalence, made exact: run the block and the K
/// scalar solves for the **same simulated duration** (LocalDelta with
/// tol 0 never fires, so every run is horizon-stopped). The deterministic
/// engine then replays the identical event schedule, and since block
/// columns never interact the block run is **bitwise identical** per
/// column to the scalar runs — far inside the 1e-12 requirement.
#[test]
fn simnet_example_5_1_block_is_bitwise_k_scalar_runs() {
    let (_, b) = generators::paper_example_system();
    let ss = common::example_5_1_split();
    let cols: Vec<Vec<f64>> = std::iter::once(b)
        .chain((0..7).map(|c| generators::random_rhs(4, 300 + c)))
        .collect();
    let topo = || Topology::complete(2).with_delays(&DelayModel::fixed_ms(1.0));
    let config = DtmConfig {
        common: CommonConfig {
            impedance: dtm_repro::core::ImpedancePolicy::PerDtlp(vec![0.2, 0.1]),
            // tol 0: the delta rule can never fire — every run ends at the
            // horizon, after the identical number of exchanges.
            termination: Termination::LocalDelta {
                tol: 0.0,
                patience: 2,
            },
            ..Default::default()
        },
        compute: ComputeModel::Fixed(SimDuration::from_micros_f64(100.0)),
        horizon: SimDuration::from_millis_f64(500.0),
        ..Default::default()
    };
    let block = solver::solve_block(&ss, topo(), &cols, None, &config).expect("block run");
    assert_eq!(block.n_rhs, 8);
    assert!(
        block.final_rms < 1e-10,
        "500 simulated ms must be deep in convergence, rms {}",
        block.final_rms
    );
    for (c, col) in cols.iter().enumerate() {
        let scalar = solver::solve_block(&ss, topo(), std::slice::from_ref(col), None, &config)
            .expect("scalar run");
        assert_eq!(
            block.solutions[c], scalar.solution,
            "column {c} must be bitwise the scalar run"
        );
        assert_eq!(block.total_solves, scalar.total_solves);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Real-execution backends: a 2-column block solve agrees with two
    /// independent scalar solves column for column (to the oracle
    /// tolerance both runs are driven below — wall-clock schedules are
    /// nondeterministic, so the comparison is through the shared fixed
    /// point, not bitwise).
    #[test]
    fn wallclock_backends_block_equals_scalar_columns(seed in 0u64..1_000) {
        let side = 6;
        let ss = grid_split(side, 2, seed);
        let n = side * side;
        let cols: Vec<Vec<f64>> = (0..2)
            .map(|c| generators::random_rhs(n, seed + 200 + c as u64))
            .collect();
        let tol = 1e-9;

        let tconfig = ThreadedConfig {
            common: CommonConfig {
                termination: Termination::OracleRms { tol },
                ..ThreadedConfig::default().common
            },
            budget: Duration::from_secs(60),
            ..Default::default()
        };
        let rconfig = RayonConfig {
            common: CommonConfig {
                termination: Termination::OracleRms { tol },
                ..RayonConfig::default().common
            },
            num_threads: 2,
            budget: Duration::from_secs(60),
            ..Default::default()
        };

        let tblock = threaded::solve_block(&ss, &cols, None, &tconfig).expect("threaded block");
        let rblock =
            rayon_backend::solve_block(&ss, &cols, None, &rconfig).expect("stealing block");
        prop_assert!(tblock.converged, "threaded rms {}", tblock.final_rms);
        prop_assert!(rblock.converged, "stealing rms {}", rblock.final_rms);
        for (c, col) in cols.iter().enumerate() {
            let tscalar = threaded::solve_block(
                &ss,
                std::slice::from_ref(col),
                None,
                &tconfig,
            )
            .expect("threaded scalar");
            let rscalar = rayon_backend::solve_block(
                &ss,
                std::slice::from_ref(col),
                None,
                &rconfig,
            )
            .expect("stealing scalar");
            prop_assert!(tscalar.converged && rscalar.converged);
            for (u, v) in tblock.solutions[c].iter().zip(&tscalar.solution) {
                prop_assert!((u - v).abs() < 1e-6, "threaded col {c}: {u} vs {v}");
            }
            for (u, v) in rblock.solutions[c].iter().zip(&rscalar.solution) {
                prop_assert!((u - v).abs() < 1e-6, "stealing col {c}: {u} vs {v}");
            }
        }
    }
}

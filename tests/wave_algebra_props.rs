//! Property tests for the shared runtime's wave algebra.
//!
//! Eq. (2.1) — `U_out(t) + Z·I_out(t) = U_in(t−τ) − Z·I_in(t−τ)` — is the
//! entire message contract between DTM nodes: whatever a sender scatters,
//! the receiver's merge must reconstruct the same wave value `u − Z·ω`,
//! and the receiver's next solve must satisfy the Robin condition
//! `u + Z·ω = w` at every port. These properties pin that down across
//! arbitrary impedances, arbitrary boundary states, and arbitrary
//! delivery delays (a delayed wave is just an older message — the algebra
//! must hold whenever it arrives).

use dtm_repro::core::dtl;
use dtm_repro::core::runtime::{build_nodes, BufferedTransport, CommonConfig, PortUpdate};
use dtm_repro::core::ImpedancePolicy;
use proptest::prelude::*;

mod common;

use common::example_5_1_split as paper_split;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Pure algebra: a scatter followed by the neighbour's merge preserves
    /// the eq. (2.1) invariant `U + Z·I` for any impedance and any state.
    #[test]
    fn scatter_merge_preserves_wave_invariant(
        u_send in -1e3f64..1e3,
        omega_send in -1e3f64..1e3,
        u_recv in -1e3f64..1e3,
        z_exp in -6.0f64..6.0,
    ) {
        let z = (2.0f64).powf(z_exp);
        // Sender side of eq. (2.1): the transmitted wave.
        let w = dtl::outgoing_wave(u_send, omega_send, z);
        // Receiver merge: the incident wave from the transmitted pair must
        // equal the sender's outgoing wave bit-for-bit (same formula).
        let w_merged = dtl::incident_wave(u_send, omega_send, z);
        prop_assert_eq!(w, w_merged);
        // Whatever potential the receiver's solve lands on, the implied
        // inflow current restores the invariant  u + z·ω = w.
        let omega_recv = dtl::inflow_current(w_merged, u_recv, z);
        prop_assert!(
            dtl::satisfies_delay_equation(u_recv, omega_recv, w_merged, z, 1e-9 * w.abs().max(1.0)),
            "u + zω = {} vs w = {}", u_recv + z * omega_recv, w
        );
    }

    /// Runtime level: node 0's step scatters exactly the waves node 1's
    /// merge reconstructs, and node 1's next solve satisfies the delay
    /// equation at every port — for arbitrary DTLP impedances.
    #[test]
    fn runtime_scatter_then_merge_satisfies_delay_equation(
        z2_exp in -4.0f64..4.0,
        z3_exp in -4.0f64..4.0,
        rounds in 1usize..6,
    ) {
        let z2 = (2.0f64).powf(z2_exp);
        let z3 = (2.0f64).powf(z3_exp);
        let ss = paper_split();
        let common = CommonConfig {
            impedance: ImpedancePolicy::PerDtlp(vec![z2, z3]),
            ..Default::default()
        };
        let mut nodes = build_nodes(&ss, &common).expect("factors");
        let mut transport = BufferedTransport::default();
        for _ in 0..rounds {
            nodes[0].step(&mut transport);
        }
        // Deliver the *last* wave front (freshest boundary conditions).
        let (dst, msg) = transport.outbox.last().expect("scattered").clone();
        prop_assert_eq!(dst, 1);
        nodes[1].absorb_msg(&msg);
        let mut sink = BufferedTransport::default();
        nodes[1].step(&mut sink);
        for update in &msg.updates {
            let z = nodes[1].local().impedances()[update.port];
            // The merged incident wave is the sender's u − z·ω (scalar
            // pipeline: the block payload is one column wide).
            prop_assert_eq!(update.u.len(), 1);
            let w = nodes[1].local().incident_wave(update.port);
            prop_assert!(
                (w - dtl::incident_wave(update.u[0], update.omega[0], z)).abs()
                    <= 1e-12 * w.abs().max(1.0),
                "incident wave mismatch at port {}", update.port
            );
            // And the receiver's solve satisfies  u + z·ω = w  there.
            let (u, omega) = nodes[1].local().outgoing(update.port);
            prop_assert!(
                dtl::satisfies_delay_equation(u, omega, w, z, 1e-8 * w.abs().max(1.0)),
                "port {}: u + zω = {} vs w = {}", update.port, u + z * omega, w
            );
        }
    }

    /// Delay-independence: a wave delivered late (any earlier scatter of
    /// the same sender) still satisfies eq. (2.1) on merge — the invariant
    /// carries no timestamp, exactly why arbitrary link delays are safe
    /// (Theorem 6.1).
    #[test]
    fn delayed_waves_preserve_the_invariant(
        z2_exp in -3.0f64..3.0,
        total in 2usize..7,
        pick in 0usize..6,
    ) {
        prop_assume!(pick < total);
        let z2 = (2.0f64).powf(z2_exp);
        let ss = paper_split();
        let common = CommonConfig {
            impedance: ImpedancePolicy::PerDtlp(vec![z2, 0.1]),
            ..Default::default()
        };
        let mut nodes = build_nodes(&ss, &common).expect("factors");
        let mut transport = BufferedTransport::default();
        // Sender advances `total` states; its wave fronts pile up in the
        // transport (in flight with different delays).
        for _ in 0..total {
            nodes[0].step(&mut transport);
        }
        // An arbitrarily delayed front (the `pick`-th oldest) arrives.
        let (_, msg) = transport.outbox[pick].clone();
        let updates: Vec<PortUpdate> = msg.updates.clone();
        nodes[1].absorb_msg(&msg);
        let mut sink = BufferedTransport::default();
        nodes[1].step(&mut sink);
        for update in &updates {
            let z = nodes[1].local().impedances()[update.port];
            let w = nodes[1].local().incident_wave(update.port);
            let (u, omega) = nodes[1].local().outgoing(update.port);
            prop_assert!(
                dtl::satisfies_delay_equation(u, omega, w, z, 1e-8 * w.abs().max(1.0)),
                "delayed wave broke eq. (2.1) at port {}", update.port
            );
        }
    }
}

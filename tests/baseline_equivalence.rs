//! Baseline equivalence: the randomized-asynchrony baselines and DTM are
//! *peer algorithms* — on random SPD systems all three must converge to
//! the direct-Cholesky solution within tolerance **on every executor**
//! (simulated machine, OS threads, work-stealing pool), under randomized
//! update orders (the Richardson seed) and randomized delay topologies.
//! Pinned as proptests so the equivalence holds across the whole space,
//! not at one seed.

mod common;

use dtm_repro::core::async_baselines::{
    self, BaselineAlgo, BaselineConfig, DIterationParams, RichardsonParams,
};
use dtm_repro::core::rayon_backend::{self, RayonConfig};
use dtm_repro::core::runtime::{CommonConfig, Termination};
use dtm_repro::core::solver::{self, ComputeModel, DtmConfig};
use dtm_repro::core::threaded::{self, ThreadedConfig};
use dtm_repro::core::SolveReport;
use dtm_repro::simnet::{DelayModel, SimDuration, Topology};
use dtm_repro::sparse::generators;
use proptest::prelude::*;
use std::time::Duration;

const TOL: f64 = 1e-8;
const CLOSE: f64 = 1e-5;

fn baseline_config() -> BaselineConfig {
    BaselineConfig {
        termination: Termination::Residual { tol: TOL },
        compute: ComputeModel::Fixed(SimDuration::from_micros_f64(200.0)),
        horizon: SimDuration::from_millis_f64(600_000.0),
        budget: Duration::from_secs(60),
        num_threads: 2,
        ..Default::default()
    }
}

fn assert_close(
    report: &SolveReport,
    exact: &[f64],
    label: &str,
) -> std::result::Result<(), proptest::TestCaseError> {
    prop_assert!(
        report.converged,
        "{label}: did not converge (residual {})",
        report.final_residual
    );
    for (i, (u, v)) in report.solution.iter().zip(exact).enumerate() {
        prop_assert!((u - v).abs() < CLOSE, "{label}: x[{i}] = {u} vs direct {v}");
    }
    prop_assert!(report.total_solves > 0, "{label}: empty activation counter");
    prop_assert!(report.total_messages > 0, "{label}: empty message counter");
    prop_assert!(report.total_flops > 0, "{label}: empty flop counter");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Random-conductance grid systems: both baselines and DTM, on all
    /// three executors, under a randomized update-order seed and a
    /// randomized asymmetric delay topology, all land on the
    /// direct-Cholesky solution.
    #[test]
    fn baselines_and_dtm_agree_with_direct_on_all_executors(
        seed in 0u64..1_000,
        order_seed in 0u64..1_000,
        side in 6usize..8,
        parts in 2usize..4,
        delay_lo in 1.0f64..10.0,
        delay_spread in 1.0f64..40.0,
    ) {
        let (a, b, asg) = common::random_grid_system(side, parts, seed);
        let ss = common::random_grid_split(side, parts, seed);
        let (exact, _) = common::direct_solution(&ss);
        let topo = Topology::ring(parts).with_delays(&DelayModel::uniform_ms(
            delay_lo,
            delay_lo + delay_spread,
            seed ^ 0x5eed,
        ));
        let config = baseline_config();

        for algo in [
            BaselineAlgo::RandomizedRichardson(RichardsonParams {
                seed: order_seed,
                ..Default::default()
            }),
            BaselineAlgo::DIteration(DIterationParams { retention: 0.2 }),
        ] {
            let name = algo.kind().name();
            let sim =
                async_baselines::solve_sim(&algo, &a, &b, &asg, topo.clone(), None, &config)
                    .expect("baseline sim run");
            assert_close(&sim, &exact, &format!("{name}/sim"))?;
            let th = async_baselines::solve_threaded(&algo, &a, &b, &asg, None, &config)
                .expect("baseline threaded run");
            assert_close(&th, &exact, &format!("{name}/threaded"))?;
            let ws = async_baselines::solve_workstealing(&algo, &a, &b, &asg, None, &config)
                .expect("baseline pool run");
            assert_close(&ws, &exact, &format!("{name}/workstealing"))?;
        }

        // DTM on the same machine and partition (EVS split of the same
        // assignment), same executors, same reference-free rule.
        let dtm_sim = solver::solve(
            &ss,
            topo,
            None,
            &DtmConfig {
                common: CommonConfig {
                    termination: Termination::Residual { tol: TOL },
                    ..Default::default()
                },
                compute: ComputeModel::Fixed(SimDuration::from_micros_f64(200.0)),
                horizon: SimDuration::from_millis_f64(600_000.0),
                ..Default::default()
            },
        )
        .expect("dtm sim run");
        assert_close(&dtm_sim, &exact, "dtm/sim")?;
        let dtm_th = threaded::solve(
            &ss,
            &ThreadedConfig {
                common: CommonConfig {
                    termination: Termination::Residual { tol: TOL },
                    ..ThreadedConfig::default().common
                },
                budget: Duration::from_secs(60),
                ..Default::default()
            },
        )
        .expect("dtm threaded run");
        assert_close(&dtm_th, &exact, "dtm/threaded")?;
        let dtm_ws = rayon_backend::solve(
            &ss,
            &RayonConfig {
                common: CommonConfig {
                    termination: Termination::Residual { tol: TOL },
                    ..RayonConfig::default().common
                },
                num_threads: 2,
                budget: Duration::from_secs(60),
                ..Default::default()
            },
        )
        .expect("dtm pool run");
        assert_close(&dtm_ws, &exact, "dtm/workstealing")?;
    }

    /// Random-sparsity SPD systems (no grid structure at all): both
    /// baselines on the simulated machine with a complete random-delay
    /// topology and chunked row assignment still pin the direct solution.
    #[test]
    fn baselines_solve_random_spd_systems(
        seed in 0u64..1_000,
        order_seed in 0u64..1_000,
        n in 20usize..40,
        parts in 2usize..5,
    ) {
        let a = generators::random_spd(n, 4, 1.0, seed);
        let b = generators::random_rhs(n, seed + 1);
        let exact = dtm_repro::sparse::SparseCholesky::factor_rcm(&a)
            .expect("SPD")
            .solve(&b);
        // Chunked assignment: row i goes to part i·parts/n.
        let asg: Vec<usize> = (0..n).map(|i| i * parts / n).collect();
        let topo = Topology::complete(parts)
            .with_delays(&DelayModel::uniform_ms(1.0, 20.0, seed ^ 0xd1ce));
        let config = baseline_config();
        for algo in [
            BaselineAlgo::RandomizedRichardson(RichardsonParams {
                seed: order_seed,
                ..Default::default()
            }),
            BaselineAlgo::DIteration(DIterationParams::default()),
        ] {
            let report =
                async_baselines::solve_sim(&algo, &a, &b, &asg, topo.clone(), None, &config)
                    .expect("baseline run on random SPD");
            prop_assert!(
                report.converged,
                "{}: residual {}",
                algo.kind().name(),
                report.final_residual
            );
            for (i, (u, v)) in report.solution.iter().zip(&exact).enumerate() {
                prop_assert!(
                    (u - v).abs() < CLOSE,
                    "{}: x[{i}] = {u} vs direct {v}",
                    algo.kind().name()
                );
            }
        }
    }
}

//! Degraded-operation behaviour: processors that stop early, overly loose
//! local tolerances, tiny horizons, and extreme delay skew. DTM should
//! degrade *gracefully* — bounded error, honest reports — never hang or
//! panic.

mod common;

use common::random_grid_split as grid_split;
use dtm_repro::core::impedance::ImpedancePolicy;
use dtm_repro::core::report::StopKind;
use dtm_repro::core::runtime::CommonConfig;
use dtm_repro::core::solver::{self, ComputeModel, DtmConfig, Termination};
use dtm_repro::simnet::{DelayModel, SimDuration, Topology};
use dtm_repro::sparse::generators;

#[test]
fn premature_halt_via_solve_cap_reports_horizon_not_hang() {
    // Nodes stop after 5 solves each: the run must terminate (quiescent —
    // no messages left) with an honest non-converged report.
    let ss = grid_split(10, 3, 501);
    let topo = Topology::ring(3).with_delays(&DelayModel::uniform_ms(5.0, 40.0, 2));
    let config = DtmConfig {
        common: CommonConfig {
            termination: Termination::OracleRms { tol: 1e-12 },
            max_solves_per_node: 5,
            ..Default::default()
        },
        compute: ComputeModel::Fixed(SimDuration::from_millis_f64(1.0)),
        horizon: SimDuration::from_millis_f64(3_600_000.0),
        ..Default::default()
    };
    let report = solver::solve(&ss, topo, None, &config).expect("runs");
    assert!(!report.converged);
    assert!(
        matches!(report.stop, StopKind::Quiescent | StopKind::AllHalted),
        "graceful stop expected, got {:?}",
        report.stop
    );
    assert!(report.total_solves <= 3 * 5);
    // Error is bounded by the initial error (it only ever decreases here).
    let first = report.series.first().expect("series recorded").1;
    assert!(report.final_rms <= first);
}

#[test]
fn loose_local_tolerance_gives_commensurately_loose_answer() {
    let ss = grid_split(10, 3, 502);
    let run = |tol: f64| {
        let topo = Topology::ring(3).with_delays(&DelayModel::uniform_ms(5.0, 40.0, 3));
        let config = DtmConfig {
            common: CommonConfig {
                termination: Termination::LocalDelta { tol, patience: 3 },
                ..Default::default()
            },
            compute: ComputeModel::Fixed(SimDuration::from_millis_f64(1.0)),
            horizon: SimDuration::from_millis_f64(3_600_000.0),
            ..Default::default()
        };
        solver::solve(&ss, topo, None, &config).expect("runs")
    };
    let loose = run(1e-3);
    let tight = run(1e-10);
    assert!(loose.total_solves < tight.total_solves);
    assert!(loose.final_rms > tight.final_rms);
    assert!(tight.final_rms < 1e-6, "tight rms {}", tight.final_rms);
    assert!(loose.final_rms < 1e-1, "loose rms {}", loose.final_rms);
}

#[test]
fn tiny_horizon_stops_on_time_limit() {
    let ss = grid_split(8, 2, 503);
    let topo = Topology::ring(2).with_delays(&DelayModel::fixed_ms(10.0));
    let config = DtmConfig {
        common: CommonConfig {
            termination: Termination::OracleRms { tol: 1e-12 },
            ..Default::default()
        },
        compute: ComputeModel::Fixed(SimDuration::from_millis_f64(1.0)),
        horizon: SimDuration::from_millis_f64(25.0), // ~2 exchanges
        ..Default::default()
    };
    let report = solver::solve(&ss, topo, None, &config).expect("runs");
    assert_eq!(report.stop, StopKind::Horizon);
    assert!(report.final_time_ms <= 25.0 + 1e-9);
    assert!(!report.converged);
}

#[test]
fn extreme_delay_skew_still_converges() {
    // One direction 1 ms, the other 500 ms: 500× asymmetry (far beyond the
    // paper's 9×). Theorem 6.1 promises convergence for arbitrary delays.
    let ss = grid_split(8, 2, 504);
    let topo = Topology::from_links(
        2,
        vec![
            dtm_repro::simnet::Link {
                src: 0,
                dst: 1,
                delay: SimDuration::from_millis_f64(1.0),
            },
            dtm_repro::simnet::Link {
                src: 1,
                dst: 0,
                delay: SimDuration::from_millis_f64(500.0),
            },
        ],
    );
    let config = DtmConfig {
        common: CommonConfig {
            termination: Termination::OracleRms { tol: 1e-8 },
            ..Default::default()
        },
        compute: ComputeModel::Fixed(SimDuration::from_millis_f64(0.5)),
        horizon: SimDuration::from_millis_f64(3_600_000.0),
        ..Default::default()
    };
    let report = solver::solve(&ss, topo, None, &config).expect("runs");
    assert!(report.converged, "rms {}", report.final_rms);
}

#[test]
fn wildly_bad_impedances_still_converge_just_slowly() {
    // Theorem 6.1: any positive impedance converges. 10⁻³ and 10³ scales
    // must both get there (eventually) on a small system.
    let ss = grid_split(6, 2, 505);
    for z in [1e-3, 1e3] {
        let topo = Topology::ring(2).with_delays(&DelayModel::fixed_ms(5.0));
        let config = DtmConfig {
            common: CommonConfig {
                impedance: ImpedancePolicy::Fixed(z),
                termination: Termination::OracleRms { tol: 1e-6 },
                ..Default::default()
            },
            compute: ComputeModel::Fixed(SimDuration::from_millis_f64(0.5)),
            horizon: SimDuration::from_millis_f64(36_000_000.0),
            sample_interval: SimDuration::from_millis_f64(1_000.0),
            ..Default::default()
        };
        let report = solver::solve(&ss, topo, None, &config).expect("runs");
        assert!(report.converged, "z = {z}: rms {}", report.final_rms);
    }
}

#[test]
fn batched_run_degrades_gracefully_under_solve_cap() {
    // Degraded mode with a block of 4 right-hand sides: processors stop
    // after 5 solves each, long before any column converges. The batched
    // run must terminate honestly — per-column solutions and error levels
    // reported, no convergence claimed for any column, no hang.
    let ss = grid_split(10, 3, 507);
    let n = 100;
    let cols: Vec<Vec<f64>> = (0..4).map(|c| generators::random_rhs(n, 600 + c)).collect();
    let topo = Topology::ring(3).with_delays(&DelayModel::uniform_ms(5.0, 40.0, 5));
    let config = DtmConfig {
        common: CommonConfig {
            termination: Termination::OracleRms { tol: 1e-12 },
            max_solves_per_node: 5,
            ..Default::default()
        },
        compute: ComputeModel::Fixed(SimDuration::from_millis_f64(1.0)),
        horizon: SimDuration::from_millis_f64(3_600_000.0),
        ..Default::default()
    };
    let report = solver::solve_block(&ss, topo, &cols, None, &config).expect("runs");
    assert!(!report.converged, "capped batch must not claim convergence");
    assert!(
        matches!(report.stop, StopKind::Quiescent | StopKind::AllHalted),
        "graceful stop expected, got {:?}",
        report.stop
    );
    assert_eq!(report.n_rhs, 4);
    assert_eq!(report.solutions.len(), 4);
    assert_eq!(report.final_rms_per_rhs.len(), 4);
    assert!(report.total_solves <= 3 * 5);
    // Honest per-column reporting: the worst column is the reported rms,
    // and every column made *some* progress over the zero guess.
    let worst = report
        .final_rms_per_rhs
        .iter()
        .fold(0.0_f64, |m, &v| m.max(v));
    assert!((worst - report.final_rms).abs() <= 1e-15 * worst.max(1.0));
    let (a, _) = ss.reconstruct();
    let f = dtm_repro::sparse::SparseCholesky::factor_rcm(&a).expect("SPD");
    for (c, (x, b)) in report.solutions.iter().zip(&cols).enumerate() {
        let exact = f.solve(b);
        let zero_err = dtm_repro::sparse::vector::rms_error(&vec![0.0; n], &exact);
        assert!(
            report.final_rms_per_rhs[c] < zero_err,
            "column {c} should improve on the zero guess"
        );
        assert_eq!(x.len(), n);
    }
}

#[test]
fn solve_cap_under_local_delta_is_not_reported_as_convergence() {
    // Nodes that hit the max_solves safety cap never declared Table 1
    // step 3.3 convergence: the run must report converged = false even
    // though every node (eventually) halted.
    let ss = grid_split(10, 3, 506);
    let topo = Topology::ring(3).with_delays(&DelayModel::uniform_ms(5.0, 40.0, 4));
    let config = DtmConfig {
        common: CommonConfig {
            // tol 0.0: the delta rule can never fire; only the cap halts.
            termination: Termination::LocalDelta {
                tol: 0.0,
                patience: 2,
            },
            max_solves_per_node: 5,
            ..Default::default()
        },
        compute: ComputeModel::Fixed(SimDuration::from_millis_f64(1.0)),
        horizon: SimDuration::from_millis_f64(3_600_000.0),
        ..Default::default()
    };
    let report = solver::solve(&ss, topo, None, &config).expect("runs");
    assert!(
        !report.converged,
        "capped-out run must not claim convergence (rms {})",
        report.final_rms
    );
    assert!(report.total_solves <= 3 * 5);
}

//! Property-based tests of the reproduction's core invariants:
//!
//! * EVS reconstruction is exact for random systems/partitions/policies;
//! * Theorem 6.1: DTM converges for arbitrary positive impedances and
//!   arbitrary positive (asymmetric) delays on SNND-split SPD systems;
//! * the VTM iteration operator is contractive under the same hypotheses;
//! * DTM with equal delays ≡ VTM, round for round.

use dtm_repro::core::analysis::WaveOperator;
use dtm_repro::core::impedance::ImpedancePolicy;
use dtm_repro::core::local::LocalSolverKind;
use dtm_repro::core::runtime::CommonConfig;
use dtm_repro::core::solver::{self, ComputeModel, DtmConfig, Termination};
use dtm_repro::graph::evs::{split, EvsOptions, SharePolicy, SplitSystem};
use dtm_repro::graph::validate;
use dtm_repro::graph::{partition, ElectricGraph, PartitionPlan};
use dtm_repro::simnet::{DelayModel, SimDuration, Topology};
use dtm_repro::sparse::generators;
use proptest::prelude::*;

fn random_split(
    nx: usize,
    ny: usize,
    k: usize,
    policy: SharePolicy,
    seed: u64,
) -> (SplitSystem, dtm_repro::sparse::Csr, Vec<f64>) {
    let a = generators::grid2d_random(nx, ny, 1.0, seed);
    let b = generators::random_rhs(nx * ny, seed ^ 0xabcd);
    let g = ElectricGraph::from_system(a.clone(), b.clone()).expect("symmetric");
    let asg = partition::grid_strips(nx, ny, k);
    let plan = PartitionPlan::from_assignment(&g, &asg).expect("valid");
    let options = EvsOptions {
        policy,
        ..Default::default()
    };
    (split(&g, &plan, &options).expect("valid split"), a, b)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// EVS reconstruction: split subsystems always sum back to (A, b).
    #[test]
    fn evs_reconstruction_is_exact(
        nx in 4usize..10,
        ny in 4usize..10,
        k in 2usize..4,
        uniform in any::<bool>(),
        seed in 0u64..1_000_000,
    ) {
        prop_assume!(k <= nx);
        let policy = if uniform { SharePolicy::Uniform } else { SharePolicy::DominanceProportional };
        let (ss, a, b) = random_split(nx, ny, k, policy, seed);
        validate::check_reconstruction(&ss, &a, &b, 1e-11).expect("reconstruction");
        validate::check_wiring(&ss).expect("wiring");
    }

    /// Theorem 6.1 numerically: dominance-proportional splits satisfy the
    /// SNND hypothesis and the wave operator is contractive for any z > 0.
    #[test]
    fn theorem_6_1_contraction(
        nx in 5usize..9,
        k in 2usize..4,
        z_exp in -4.0f64..4.0,
        seed in 0u64..1_000_000,
    ) {
        let (ss, _, _) = random_split(nx, nx, k, SharePolicy::DominanceProportional, seed);
        let check = validate::check_theorem_hypothesis(&ss, 1e-10);
        prop_assert!(check.satisfied, "split must satisfy Thm 6.1: {:?}", check.parts);
        let z = (2.0f64).powf(z_exp);
        let mut op = WaveOperator::new(&ss, &ImpedancePolicy::Fixed(z), LocalSolverKind::Auto)
            .expect("operator");
        let rho = op.spectral_radius(150, seed);
        prop_assert!(rho < 1.0, "ρ = {rho} must be < 1 for z = {z}");
    }

    /// DTM converges under arbitrary positive asymmetric delays.
    #[test]
    fn dtm_converges_for_arbitrary_delays(
        nx in 5usize..9,
        k in 2usize..4,
        lo_ms in 1.0f64..20.0,
        spread in 1.0f64..10.0,
        seed in 0u64..1_000_000,
    ) {
        let (ss, a, b) = random_split(nx, nx, k, SharePolicy::DominanceProportional, seed);
        let topo = Topology::ring(k)
            .with_delays(&DelayModel::uniform_ms(lo_ms, lo_ms * spread, seed));
        let config = DtmConfig {
            common: CommonConfig {
                termination: Termination::OracleRms { tol: 1e-7 },
                ..Default::default()
            },
            compute: ComputeModel::Fixed(SimDuration::from_millis_f64(lo_ms / 4.0)),
            horizon: SimDuration::from_millis_f64(3_600_000.0),
            sample_interval: SimDuration::from_millis_f64(50.0),
            ..Default::default()
        };
        let report = solver::solve(&ss, topo, None, &config).expect("runs");
        prop_assert!(report.converged, "rms {}", report.final_rms);
        prop_assert!(a.residual_norm(&report.solution, &b) < 1e-4);
    }
}

/// Non-proptest determinism check: two identical runs are bit-identical.
#[test]
fn simulation_is_deterministic() {
    let (ss, _, _) = random_split(8, 8, 3, SharePolicy::DominanceProportional, 99);
    let mk = || {
        let topo = Topology::ring(3).with_delays(&DelayModel::uniform_ms(5.0, 40.0, 7));
        let config = DtmConfig {
            common: CommonConfig {
                termination: Termination::OracleRms { tol: 1e-9 },
                ..Default::default()
            },
            compute: ComputeModel::Fixed(SimDuration::from_millis_f64(1.0)),
            horizon: SimDuration::from_millis_f64(600_000.0),
            ..Default::default()
        };
        solver::solve(&ss, topo, None, &config).expect("runs")
    };
    let r1 = mk();
    let r2 = mk();
    assert_eq!(r1.total_solves, r2.total_solves);
    assert_eq!(r1.total_messages, r2.total_messages);
    assert_eq!(r1.final_time_ms, r2.final_time_ms);
    assert_eq!(r1.solution, r2.solution);
    assert_eq!(r1.series, r2.series);
}

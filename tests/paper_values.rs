//! End-to-end checks of every concrete number printed in the paper:
//! system (3.2), subsystems (4.1)/(4.2), local systems (5.4)/(5.5), the
//! initial condition (5.6), and the Example 5.1 machine.

use dtm_repro::core::impedance::ImpedancePolicy;
use dtm_repro::core::local::{LocalSolverKind, LocalSystem};
use dtm_repro::core::runtime::CommonConfig;
use dtm_repro::core::solver::{self, ComputeModel, DtmConfig, Termination};
use dtm_repro::simnet::{Link, SimDuration, Topology};
use dtm_repro::sparse::generators;

mod common;

use common::example_5_1_split as paper_split;

fn paper_topology() -> Topology {
    Topology::from_links(
        2,
        vec![
            Link {
                src: 0,
                dst: 1,
                delay: SimDuration::from_micros_f64(6.7),
            },
            Link {
                src: 1,
                dst: 0,
                delay: SimDuration::from_micros_f64(2.9),
            },
        ],
    )
}

#[test]
fn system_3_2_row_by_row() {
    let (a, b) = generators::paper_example_system();
    let expect = [
        [5.0, -1.0, -1.0, 0.0],
        [-1.0, 6.0, -2.0, -1.0],
        [-1.0, -2.0, 7.0, -2.0],
        [0.0, -1.0, -2.0, 8.0],
    ];
    for (r, row) in expect.iter().enumerate() {
        for (c, &v) in row.iter().enumerate() {
            assert_eq!(a.get(r, c), v, "A({r},{c})");
        }
    }
    assert_eq!(b, vec![1.0, 2.0, 3.0, 4.0]);
}

#[test]
fn subsystems_4_1_and_4_2_reconstruct_3_2() {
    let ss = paper_split();
    let (a2, b2) = ss.reconstruct();
    let (a, b) = generators::paper_example_system();
    assert!(a.to_dense().max_abs_diff(&a2.to_dense()) < 1e-12);
    for (u, v) in b.iter().zip(&b2) {
        assert!((u - v).abs() < 1e-12);
    }
}

#[test]
fn local_systems_5_4_and_5_5_digit_for_digit() {
    // (5.4): diag [7.5, 13.3] on the V2a/V3a ports; (5.5): [8.5, 13.7].
    let ss = paper_split();
    let l1 = LocalSystem::new(&ss.subdomains[0], &[0.2, 0.1], LocalSolverKind::Dense).expect("SPD");
    let l2 = LocalSystem::new(&ss.subdomains[1], &[0.2, 0.1], LocalSolverKind::Dense).expect("SPD");
    assert!((l1.matrix().get(0, 0) - 7.5).abs() < 1e-12);
    assert!((l1.matrix().get(1, 1) - 13.3).abs() < 1e-12);
    assert!((l2.matrix().get(0, 0) - 8.5).abs() < 1e-12);
    assert!((l2.matrix().get(1, 1) - 13.7).abs() < 1e-12);
}

#[test]
fn initial_condition_5_6_is_all_zero() {
    let ss = paper_split();
    let ls = LocalSystem::new(&ss.subdomains[0], &[0.2, 0.1], LocalSolverKind::Dense).expect("SPD");
    for p in 0..ls.n_ports() {
        assert_eq!(ls.incident_wave(p), 0.0, "x(0) = ω(0) = 0 ⇒ w(0) = 0");
    }
    assert!(ls.solution().iter().all(|&v| v == 0.0));
}

#[test]
fn figure_8_run_reaches_the_exact_solution() {
    let ss = paper_split();
    let config = DtmConfig {
        common: CommonConfig {
            impedance: ImpedancePolicy::PerDtlp(vec![0.2, 0.1]),
            termination: Termination::OracleRms { tol: 1e-11 },
            ..Default::default()
        },
        compute: ComputeModel::Zero,
        horizon: SimDuration::from_millis_f64(10.0),
        ..Default::default()
    };
    let report = solver::solve(&ss, paper_topology(), None, &config).expect("runs");
    assert!(report.converged);
    // x* = A⁻¹ b of (3.2) = [10/17, 15.6/17, 17.4/17, 14.8/17].
    let expect = [10.0 / 17.0, 15.6 / 17.0, 17.4 / 17.0, 14.8 / 17.0];
    for (u, v) in report.solution.iter().zip(&expect) {
        assert!((u - v).abs() < 1e-7, "{u} vs {v}");
    }
}

#[test]
fn delay_mapping_is_asymmetric_and_exact() {
    let topo = paper_topology();
    assert_eq!(topo.try_delay(0, 1).map(|d| d.as_nanos()), Ok(6_700));
    assert_eq!(topo.try_delay(1, 0).map(|d| d.as_nanos()), Ok(2_900));
    assert!(topo.asymmetry() > 0.5);
}

#[test]
fn fig9_impedance_sensitivity_visible_at_100us() {
    // Fig. 9's phenomenon at fixed t = 100 µs: a good impedance pair beats
    // a bad one by orders of magnitude.
    let run = |z2: f64, z3: f64| {
        let config = DtmConfig {
            common: CommonConfig {
                impedance: ImpedancePolicy::PerDtlp(vec![z2, z3]),
                termination: Termination::OracleRms { tol: 0.0 },
                ..Default::default()
            },
            compute: ComputeModel::Zero,
            horizon: SimDuration::from_micros_f64(100.0),
            ..Default::default()
        };
        solver::solve(&paper_split(), paper_topology(), None, &config)
            .expect("runs")
            .final_rms
    };
    let good = run(0.2, 0.2);
    let bad = run(0.025, 0.025);
    assert!(
        good < bad / 100.0,
        "good Z rms {good:.2e} should beat bad Z rms {bad:.2e} by ≫100×"
    );
}
